// Package datagen generates the synthetic columns of the paper's
// micro-benchmarks (Table 1) and their select-workload variants (§5.1).
//
// Table 1 (each column 128 Mi data elements in the paper; the element count
// is a parameter here):
//
//	C1  uniform in [0, 63],                unsorted, max bit width 6
//	C2  99.99% uniform in [0, 63],         unsorted, max bit width 63
//	    0.01% constant 2^63 - 1
//	C3  uniform in [2^62, 2^62 + 63],      unsorted, max bit width 63
//	C4  uniform in [2^47, 2^47 + 100000],  sorted,   max bit width 48
//
// All generators are deterministic in (n, seed).
package datagen

import (
	"math/rand"
	"sort"
)

// ColumnID identifies one of the synthetic columns of Table 1.
type ColumnID int

// The four synthetic columns of Table 1.
const (
	C1 ColumnID = iota + 1
	C2
	C3
	C4
)

// All lists the four Table 1 columns.
var All = []ColumnID{C1, C2, C3, C4}

func (c ColumnID) String() string {
	switch c {
	case C1:
		return "C1"
	case C2:
		return "C2"
	case C3:
		return "C3"
	case C4:
		return "C4"
	default:
		return "C?"
	}
}

const (
	c2Outlier = uint64(1)<<63 - 1
	c3Base    = uint64(1) << 62
	c4Base    = uint64(1) << 47
	c4Span    = 100000
)

// Generate returns column c with n data elements.
func Generate(c ColumnID, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	switch c {
	case C1:
		for i := range vals {
			vals[i] = uint64(rng.Intn(64))
		}
	case C2:
		for i := range vals {
			if rng.Float64() < 0.0001 {
				vals[i] = c2Outlier
			} else {
				vals[i] = uint64(rng.Intn(64))
			}
		}
		// Guarantee the advertised max bit width for any n.
		if n > 0 {
			vals[rng.Intn(n)] = c2Outlier
		}
	case C3:
		for i := range vals {
			vals[i] = c3Base + uint64(rng.Intn(64))
		}
	case C4:
		for i := range vals {
			vals[i] = c4Base + uint64(rng.Intn(c4Span+1))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	}
	return vals
}

// Lowest returns the a-priori known lowest data element of column c, the
// point-predicate constant of the single-operator experiment.
func Lowest(c ColumnID) uint64 {
	switch c {
	case C1, C2:
		return 0
	case C3:
		return c3Base
	case C4:
		return c4Base
	default:
		return 0
	}
}

// GenerateSelectWorkload returns column c adapted for the select-operator
// micro-benchmark (§5.1): 90% of all data elements equal the column's lowest
// value, the remaining 10% follow the Table 1 distribution. C4 stays sorted.
func GenerateSelectWorkload(c ColumnID, n int, seed int64) (vals []uint64, needle uint64) {
	rng := rand.New(rand.NewSource(seed))
	vals = Generate(c, n, seed+1)
	needle = Lowest(c)
	for i := range vals {
		if rng.Float64() < 0.9 {
			vals[i] = needle
		}
	}
	if c == C4 {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	}
	return vals, needle
}
