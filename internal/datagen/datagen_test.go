package datagen

import (
	"testing"

	"morphstore/internal/stats"
)

// TestTable1Properties verifies every generated column matches its row of
// Table 1: distribution bounds, sortedness, and maximum bit width.
func TestTable1Properties(t *testing.T) {
	n := 200000
	cases := []struct {
		id      ColumnID
		maxBits uint
		sorted  bool
	}{
		{C1, 6, false},
		{C2, 63, false},
		{C3, 63, false},
		{C4, 48, false}, // sorted column: Sorted flag checked separately
	}
	for _, c := range cases {
		vals := Generate(c.id, n, 42)
		if len(vals) != n {
			t.Fatalf("%v: n = %d", c.id, len(vals))
		}
		p := stats.Collect(vals)
		if p.MaxBits != c.maxBits {
			t.Errorf("%v: max bits = %d, want %d", c.id, p.MaxBits, c.maxBits)
		}
	}
	if !stats.Collect(Generate(C4, n, 42)).Sorted {
		t.Error("C4 must be sorted")
	}
	if stats.Collect(Generate(C1, n, 42)).Sorted {
		t.Error("C1 must not be sorted")
	}
}

func TestC2OutlierRate(t *testing.T) {
	n := 1 << 20
	vals := Generate(C2, n, 7)
	outliers := 0
	for _, v := range vals {
		if v == uint64(1)<<63-1 {
			outliers++
		} else if v > 63 {
			t.Fatalf("C2 non-outlier value %d out of range", v)
		}
	}
	rate := float64(outliers) / float64(n)
	if rate < 0.00003 || rate > 0.0005 {
		t.Errorf("C2 outlier rate = %f, want about 0.0001", rate)
	}
}

func TestC3C4Ranges(t *testing.T) {
	for _, v := range Generate(C3, 100000, 3) {
		if v < 1<<62 || v > 1<<62+63 {
			t.Fatalf("C3 value %d out of range", v)
		}
	}
	for _, v := range Generate(C4, 100000, 3) {
		if v < 1<<47 || v > 1<<47+100000 {
			t.Fatalf("C4 value %d out of range", v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, id := range All {
		a := Generate(id, 10000, 5)
		b := Generate(id, 10000, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v not deterministic at %d", id, i)
			}
		}
		c := Generate(id, 10000, 6)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && id != C4 { // C4's sort can coincide, others must differ
			t.Errorf("%v: different seeds produced identical data", id)
		}
	}
}

// TestSelectWorkloadSelectivity verifies the 90% point-predicate share.
func TestSelectWorkloadSelectivity(t *testing.T) {
	n := 1 << 18
	for _, id := range All {
		vals, needle := GenerateSelectWorkload(id, n, 11)
		if needle != Lowest(id) {
			t.Errorf("%v: needle %d != lowest %d", id, needle, Lowest(id))
		}
		hits := 0
		for _, v := range vals {
			if v == needle {
				hits++
			}
		}
		sel := float64(hits) / float64(n)
		if sel < 0.88 || sel > 0.93 {
			t.Errorf("%v: selectivity %f, want about 0.9", id, sel)
		}
	}
	// C4's workload must stay sorted.
	vals, _ := GenerateSelectWorkload(C4, n, 11)
	if !stats.Collect(vals).Sorted {
		t.Error("C4 select workload must stay sorted")
	}
}

func TestStringer(t *testing.T) {
	if C1.String() != "C1" || C4.String() != "C4" || ColumnID(99).String() != "C?" {
		t.Error("ColumnID strings")
	}
}
