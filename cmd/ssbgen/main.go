// Command ssbgen generates an SSB instance and reports per-column data
// characteristics together with the cost model's format recommendation —
// a quick way to inspect what the compression-aware optimizer sees.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"morphstore/internal/costmodel"
	"morphstore/internal/formats"
	"morphstore/internal/ssb"
	"morphstore/internal/stats"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M lineorder rows)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	d, err := ssb.Generate(*sf, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSB at SF %g: %d lineorder, %d customers, %d suppliers, %d parts, %d dates\n",
		*sf, d.Lineorder, d.Customers, d.Suppliers, d.Parts, d.Dates)

	tables := make([]string, 0, len(d.DB.Tables))
	for tn := range d.DB.Tables {
		tables = append(tables, tn)
	}
	sort.Strings(tables)
	for _, tn := range tables {
		t := d.DB.Tables[tn]
		cols := make([]string, 0, len(t.Cols))
		for cn := range t.Cols {
			cols = append(cols, cn)
		}
		sort.Strings(cols)
		fmt.Printf("\n%s (%d rows)\n", tn, t.Cols[cols[0]].N())
		fmt.Printf("  %-18s %8s %7s %7s %10s %-12s %9s\n",
			"column", "maxbits", "sorted", "runs%", "distinct", "suggested", "rate")
		for _, cn := range cols {
			vals, _ := t.Cols[cn].Values()
			p := stats.Collect(vals)
			rec, err := costmodel.ChooseBySize(p, formats.AllDescs())
			if err != nil {
				log.Fatal(err)
			}
			col, err := formats.Compress(vals, rec)
			if err != nil {
				log.Fatal(err)
			}
			distinct := fmt.Sprintf("%d", p.Distinct)
			if p.DistinctSaturated {
				distinct = ">=" + distinct
			}
			fmt.Printf("  %-18s %8d %7v %6.1f%% %10s %-12v %8.1f%%\n",
				cn, p.MaxBits, p.Sorted, 100*float64(p.Runs)/float64(max(p.N, 1)),
				distinct, rec, 100*col.CompressionRate())
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
