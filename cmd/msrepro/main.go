// Command msrepro regenerates every table and figure of the MorphStore
// paper's evaluation (§5) on this machine, printing paper-style result rows.
//
// Usage:
//
//	msrepro -exp all                 # everything (default micro/SSB sizes)
//	msrepro -exp fig5 -n 2097152     # select-operator format matrix
//	msrepro -exp fig9 -sf 0.1        # per-query SSB system comparison
//	msrepro -exp fig7 -full          # include greedy runtime searches
//
// Experiments: table1, fig1, fig5, fig6, fig7, fig8, fig9, fig10, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

type options struct {
	exp     string
	n       int
	sf      float64
	seed    int64
	repeats int
	full    bool
}

func main() {
	var opt options
	flag.StringVar(&opt.exp, "exp", "all", "experiment to run (table1|fig1|fig5|fig6|fig7|fig8|fig9|fig10|all)")
	flag.IntVar(&opt.n, "n", 1<<21, "micro-benchmark column size in elements (paper: 128 Mi)")
	flag.Float64Var(&opt.sf, "sf", 0.05, "SSB scale factor (paper: 10)")
	flag.Int64Var(&opt.seed, "seed", 42, "generator seed")
	flag.IntVar(&opt.repeats, "repeats", 3, "timing repetitions (minimum is reported)")
	flag.BoolVar(&opt.full, "full", false, "run the expensive greedy runtime searches of Fig. 7")
	flag.Parse()

	experiments := map[string]func(options) error{
		"table1": runTable1,
		"fig5":   runFig5,
		"fig6":   runFig6,
		"fig1":   runFig1,
		"fig7":   runFig7,
		"fig8":   runFig8,
		"fig9":   runFig9,
		"fig10":  runFig10,
	}
	order := []string{"table1", "fig5", "fig6", "fig1", "fig9", "fig7", "fig8", "fig10"}

	start := time.Now()
	if opt.exp == "all" {
		for _, name := range order {
			if err := experiments[name](opt); err != nil {
				fmt.Fprintf(os.Stderr, "msrepro: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	} else if f, ok := experiments[opt.exp]; ok {
		if err := f(opt); err != nil {
			fmt.Fprintf(os.Stderr, "msrepro: %s: %v\n", opt.exp, err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "msrepro: unknown experiment %q\n", opt.exp)
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func header(title string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("================================================================\n")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func mib(b int) float64 { return float64(b) / (1 << 20) }
