package main

import (
	"context"
	"fmt"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/datagen"
	"morphstore/internal/formats"
	"morphstore/internal/ops"
	"morphstore/internal/stats"
	"morphstore/internal/vector"
)

// runTable1 regenerates Table 1: the synthetic column definitions, verified
// against the generated data.
func runTable1(opt options) error {
	header(fmt.Sprintf("Table 1: synthetic columns (%d data elements; paper: 128 Mi)", opt.n))
	fmt.Printf("%-4s %-42s %-7s %8s\n", "col", "data distribution", "sorted", "max bits")
	dists := map[datagen.ColumnID]string{
		datagen.C1: "uniform in [0, 63]",
		datagen.C2: "99.99% uniform in [0,63], 0.01% 2^63-1",
		datagen.C3: "uniform in [2^62, 2^62+63]",
		datagen.C4: "uniform in [2^47, 2^47+100K]",
	}
	for _, id := range datagen.All {
		vals := datagen.Generate(id, opt.n, opt.seed)
		p := stats.Collect(vals)
		fmt.Printf("%-4v %-42s %-7v %8d\n", id, dists[id], p.Sorted, p.MaxBits)
	}
	return nil
}

// timeIt reports the minimum duration of f over opt.repeats runs.
func timeIt(repeats int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// runFig5 regenerates Figure 5: the select-operator runtime for all 25
// input/output format combinations over the C1-C4 select workloads.
func runFig5(opt options) error {
	header(fmt.Sprintf("Figure 5: select-operator runtime, all 25 format combinations (n=%d, 90%% selectivity)", opt.n))
	descs := formats.PaperDescs()
	for _, id := range datagen.All {
		vals, needle := datagen.GenerateSelectWorkload(id, opt.n, opt.seed)
		// Pre-encode the input column in every format.
		inputs := make([]*columns.Column, len(descs))
		for i, d := range descs {
			c, err := formats.Compress(vals, d)
			if err != nil {
				return err
			}
			inputs[i] = c
		}
		var uncomprT time.Duration
		bestT, worstT := time.Duration(-1), time.Duration(-1)
		var bestIn, bestOut, worstIn, worstOut columns.FormatDesc
		fmt.Printf("\n-- input column %v --\n", id)
		fmt.Printf("%-14s", "in \\ out")
		for _, od := range descs {
			fmt.Printf(" %12v", od)
		}
		fmt.Println()
		for i, ind := range descs {
			fmt.Printf("%-14v", ind)
			for _, outd := range descs {
				t, err := timeIt(opt.repeats, func() error {
					_, err := ops.Select(inputs[i], bitutil.CmpEq, needle, outd, vector.Vec512)
					return err
				})
				if err != nil {
					return err
				}
				fmt.Printf(" %9.2f ms", ms(t))
				if ind.Kind == columns.Uncompressed && outd.Kind == columns.Uncompressed {
					uncomprT = t
				}
				if bestT < 0 || t < bestT {
					bestT, bestIn, bestOut = t, ind, outd
				}
				if worstT < 0 || t > worstT {
					worstT, worstIn, worstOut = t, ind, outd
				}
			}
			fmt.Println()
		}
		fmt.Printf("uncompressed %.2f ms | best %v->%v %.2f ms (%.0f%% saved) | worst %v->%v %.2f ms (%+.0f%%)\n",
			ms(uncomprT), bestIn, bestOut, ms(bestT), 100*(1-float64(bestT)/float64(uncomprT)),
			worstIn, worstOut, ms(worstT), 100*(float64(worstT)/float64(uncomprT)-1))
	}
	fmt.Println("\npaper shape: best combo saves 72-81%; worst adds ~20%; compressing the output")
	fmt.Println("(an intermediate) matters more than the input; best output format is DELTA+BP.")
	return nil
}

// fig6Case is one of the three base-column combinations of Figure 6.
type fig6Case struct {
	name string
	x, y datagen.ColumnID
	// cascades for the intermediates in the fourth configuration.
	xFmt, yFmt columns.FormatDesc
}

// runFig6 regenerates Figure 6: memory footprint by column and runtime by
// operator for the simple query SELECT SUM(Y) FROM R WHERE X = c.
func runFig6(opt options) error {
	header(fmt.Sprintf("Figure 6: simple query SELECT SUM(Y) FROM R WHERE X = c (n=%d)", opt.n))
	cases := []fig6Case{
		{"case 1 (X=C1, Y=C1)", datagen.C1, datagen.C1, columns.DeltaBPDesc, columns.ForBPDesc},
		{"case 2 (X=C1, Y=C4)", datagen.C1, datagen.C4, columns.DeltaBPDesc, columns.DeltaBPDesc},
		{"case 3 (X=C2, Y=C3)", datagen.C2, datagen.C3, columns.DeltaBPDesc, columns.ForBPDesc},
	}
	for _, cse := range cases {
		xvals, needle := datagen.GenerateSelectWorkload(cse.x, opt.n, opt.seed)
		yvals := datagen.Generate(cse.y, opt.n, opt.seed+100)
		db := core.NewDB()
		db.AddTable("r", map[string][]uint64{"x": xvals, "y": yvals})

		b := core.NewBuilder()
		x := b.Scan("r", "x")
		y := b.Scan("r", "y")
		xp := b.Select("x_sel", x, bitutil.CmpEq, needle)
		yp := b.Project("y_proj", y, xp)
		b.Result(b.SumWhole("total", yp))
		plan, err := b.Build()
		if err != nil {
			return err
		}

		configs := []struct {
			name  string
			base  map[string]columns.FormatDesc
			inter map[string]columns.FormatDesc
		}{
			{"uncompressed", nil, nil},
			{"staticBP base", map[string]columns.FormatDesc{
				"r.x": columns.StaticBPDesc(0), "r.y": columns.StaticBPDesc(0)}, nil},
			{"staticBP base+inter", map[string]columns.FormatDesc{
				"r.x": columns.StaticBPDesc(0), "r.y": columns.StaticBPDesc(0)},
				map[string]columns.FormatDesc{
					"x_sel": columns.StaticBPDesc(0), "y_proj": columns.StaticBPDesc(0)}},
			{"cascades for inter", map[string]columns.FormatDesc{
				"r.x": columns.StaticBPDesc(0), "r.y": columns.StaticBPDesc(0)},
				map[string]columns.FormatDesc{
					"x_sel": cse.xFmt, "y_proj": cse.yFmt}},
		}

		fmt.Printf("\n-- %s --\n", cse.name)
		fmt.Printf("%-22s %10s %10s %10s %10s | %9s %9s %9s | %9s\n",
			"configuration", "X [MiB]", "Y [MiB]", "X' [MiB]", "Y' [MiB]",
			"sel [ms]", "proj [ms]", "sum [ms]", "total[ms]")
		var refSum uint64
		for ci, cfg := range configs {
			enc, err := db.Encode(cfg.base)
			if err != nil {
				return err
			}
			// Paper reproduction: a single-worker engine yields sequential
			// operator timings; the plan compiles once per configuration.
			eng := core.NewEngine(enc, core.WithParallelism(1), core.WithStyle(vector.Vec512))
			pq, err := eng.Prepare(plan, core.WithFormats(cfg.inter))
			if err != nil {
				return err
			}
			var res *core.Result
			t, err := timeIt(opt.repeats, func() error {
				var err error
				res, err = pq.Execute(context.Background())
				return err
			})
			if err != nil {
				return err
			}
			sum, _ := res.Cols["total"].Values()
			if ci == 0 {
				refSum = sum[0]
			} else if sum[0] != refSum {
				return fmt.Errorf("fig6 %s/%s: result %d != reference %d", cse.name, cfg.name, sum[0], refSum)
			}
			cb := res.Meas.ColBytes
			fmt.Printf("%-22s %10.2f %10.2f %10.2f %10.2f | %9.2f %9.2f %9.2f | %9.2f\n",
				cfg.name, mib(cb["r.x"]), mib(cb["r.y"]), mib(cb["x_sel"]), mib(cb["y_proj"]),
				ms(res.Meas.PerOp["select"]), ms(res.Meas.PerOp["project"]), ms(res.Meas.PerOp["sum"]),
				ms(t))
		}
	}
	fmt.Println("\npaper shape: compressing only base columns barely helps runtime (writing")
	fmt.Println("uncompressed intermediates dominates); compressing intermediates too shrinks")
	fmt.Println("both footprint and runtime; the best cascade is case-dependent.")
	return nil
}
