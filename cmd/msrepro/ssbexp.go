package main

import (
	"context"
	"fmt"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/monetsim"
	"morphstore/internal/ssb"
	"morphstore/internal/vector"
)

// ssbCache shares one generated SSB instance plus derived artifacts across
// the experiments of a single msrepro run.
type ssbCache struct {
	sf    float64
	seed  int64
	data  *ssb.Data
	plans map[ssb.Query]*core.Plan
	refs  map[ssb.Query][]ssb.Row
	// costAssign caches the cost-based format assignment per query.
	costAssign map[ssb.Query]*core.Assignment
	// bestFoot/worstFoot cache the exhaustive footprint search per query.
	bestFoot, worstFoot map[ssb.Query]*core.Assignment
	mdbWide, mdbNarrow  *monetsim.DB
}

var cache *ssbCache

func getSSB(opt options) (*ssbCache, error) {
	if cache != nil && cache.sf == opt.sf && cache.seed == opt.seed {
		return cache, nil
	}
	fmt.Printf("\ngenerating SSB data at SF %g ...\n", opt.sf)
	d, err := ssb.Generate(opt.sf, opt.seed)
	if err != nil {
		return nil, err
	}
	c := &ssbCache{
		sf: opt.sf, seed: opt.seed, data: d,
		plans:      make(map[ssb.Query]*core.Plan),
		refs:       make(map[ssb.Query][]ssb.Row),
		costAssign: make(map[ssb.Query]*core.Assignment),
		bestFoot:   make(map[ssb.Query]*core.Assignment),
		worstFoot:  make(map[ssb.Query]*core.Assignment),
	}
	for _, q := range ssb.Queries {
		p, err := ssb.BuildPlan(q, d.Dicts)
		if err != nil {
			return nil, err
		}
		c.plans[q] = p
		r, err := ssb.Reference(q, d)
		if err != nil {
			return nil, err
		}
		c.refs[q] = r
	}
	if c.mdbWide, err = monetsim.NewDB(d.DB, false); err != nil {
		return nil, err
	}
	if c.mdbNarrow, err = monetsim.NewDB(d.DB, true); err != nil {
		return nil, err
	}
	cache = c
	return c, nil
}

// prepare compiles the query once on a single-worker engine over db. The
// paper's figures measure the sequential operator-at-a-time model, so the
// reproduction pins the budget to 1 (per-operator timings would otherwise
// include scheduler contention on multi-core hosts).
func (c *ssbCache) prepare(q ssb.Query, db *core.DB, cfg *core.Config) (*core.Prepared, error) {
	eng := core.NewEngine(db, core.WithParallelism(1))
	return eng.Prepare(c.plans[q], core.WithConfig(cfg))
}

// verified executes the prepared query and checks the result against the
// reference.
func (c *ssbCache) verified(q ssb.Query, pq *core.Prepared) (*core.Result, error) {
	res, err := pq.Execute(context.Background())
	if err != nil {
		return nil, err
	}
	got, err := ssb.ExtractResult(q, res)
	if err != nil {
		return nil, err
	}
	if !ssb.RowsEqual(got, c.refs[q]) {
		return nil, fmt.Errorf("ssb %s: engine result differs from reference", q)
	}
	return res, nil
}

// timedRun reports the minimum runtime (engine-measured operator time) of
// the configuration over opt.repeats runs, verifying the first. The plan is
// prepared once and executed repeatedly — the prepared-query pattern.
func (c *ssbCache) timedRun(opt options, q ssb.Query, db *core.DB, cfg *core.Config) (*core.Result, time.Duration, error) {
	pq, err := c.prepare(q, db, cfg)
	if err != nil {
		return nil, 0, err
	}
	res, err := c.verified(q, pq)
	if err != nil {
		return nil, 0, err
	}
	best := res.Meas.Runtime
	for i := 1; i < opt.repeats; i++ {
		r, err := pq.Execute(context.Background())
		if err != nil {
			return nil, 0, err
		}
		if r.Meas.Runtime < best {
			best = r.Meas.Runtime
		}
	}
	return res, best, nil
}

// costBased returns (cached) the cost-model assignment of a query.
func (c *ssbCache) costBased(q ssb.Query) (*core.Assignment, error) {
	if a, ok := c.costAssign[q]; ok {
		return a, nil
	}
	a, err := core.CostBasedAssignment(c.plans[q], c.data.DB)
	if err != nil {
		return nil, err
	}
	c.costAssign[q] = a
	return a, nil
}

// footSearch returns (cached) the exhaustive per-column footprint search.
func (c *ssbCache) footSearch(q ssb.Query) (best, worst *core.Assignment, err error) {
	if b, ok := c.bestFoot[q]; ok {
		return b, c.worstFoot[q], nil
	}
	b, w, err := core.FootprintSearch(c.plans[q], c.data.DB)
	if err != nil {
		return nil, nil, err
	}
	c.bestFoot[q], c.worstFoot[q] = b, w
	return b, w, nil
}

// staticAssign assigns static BP to every column of the plan.
func staticAssign(p *core.Plan) *core.Assignment {
	a := core.NewAssignment()
	for _, name := range p.BaseColumns() {
		a.Base[name] = columns.StaticBPDesc(0)
	}
	for _, name := range p.IntermediateNames() {
		a.Inter[name] = columns.StaticBPDesc(0)
	}
	return a
}

// runAssign executes a query under a full assignment.
func (c *ssbCache) runAssign(opt options, q ssb.Query, a *core.Assignment, style vector.Style, specialized bool) (*core.Result, time.Duration, error) {
	enc, err := c.data.DB.Encode(a.Base)
	if err != nil {
		return nil, 0, err
	}
	return c.timedRun(opt, q, enc, a.Config(style, specialized))
}

// runFig9 regenerates Figure 9: per-query runtimes of the five systems.
func runFig9(opt options) error {
	c, err := getSSB(opt)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Figure 9: MonetDB vs MorphStore, per-query runtimes [ms] (SF %g)", opt.sf))
	fmt.Printf("%-6s %12s %12s %12s %12s %12s\n", "query",
		"MonetDB", "MS scalar", "MS vec512", "MS vec+compr", "MonetDB nrw")
	sums := make([]float64, 5)
	for _, q := range ssb.Queries {
		row := make([]float64, 5)

		// MonetDB-style baseline, wide.
		t, err := timeMonet(opt, c, q, c.mdbWide)
		if err != nil {
			return err
		}
		row[0] = ms(t)

		// MorphStore scalar, uncompressed.
		_, ts, err := c.timedRun(opt, q, c.data.DB, core.UncompressedConfig(vector.Scalar))
		if err != nil {
			return err
		}
		row[1] = ms(ts)

		// MorphStore vectorized, uncompressed.
		_, tv, err := c.timedRun(opt, q, c.data.DB, core.UncompressedConfig(vector.Vec512))
		if err != nil {
			return err
		}
		row[2] = ms(tv)

		// MorphStore vectorized + continuous compression (cost-based
		// formats; greedy search with -full).
		assign, err := c.bestRuntimeAssign(opt, q)
		if err != nil {
			return err
		}
		_, tc, err := c.runAssign(opt, q, assign, vector.Vec512, true)
		if err != nil {
			return err
		}
		row[3] = ms(tc)

		// MonetDB-style baseline, narrow types.
		tn, err := timeMonet(opt, c, q, c.mdbNarrow)
		if err != nil {
			return err
		}
		row[4] = ms(tn)

		fmt.Printf("%-6s %12.2f %12.2f %12.2f %12.2f %12.2f\n",
			q, row[0], row[1], row[2], row[3], row[4])
		for i, v := range row {
			sums[i] += v
		}
	}
	fmt.Printf("%-6s %12.2f %12.2f %12.2f %12.2f %12.2f\n", "avg",
		sums[0]/13, sums[1]/13, sums[2]/13, sums[3]/13, sums[4]/13)
	fmt.Println("\npaper shape: scalar MorphStore ~= MonetDB; vectorization ~-19%;")
	fmt.Println("continuous compression ~-54% vs scalar (2x); narrow types help MonetDB ~-16%.")
	return nil
}

// bestRuntimeAssign picks the continuous-compression configuration for the
// runtime experiments: greedy search with -full, cost-based otherwise.
func (c *ssbCache) bestRuntimeAssign(opt options, q ssb.Query) (*core.Assignment, error) {
	if opt.full {
		return core.RuntimeGreedySearch(c.plans[q], c.data.DB, vector.Vec512, true, false, opt.repeats)
	}
	return c.costBased(q)
}

// timeMonet times the baseline engine on a query, verifying its result.
func timeMonet(opt options, c *ssbCache, q ssb.Query, db *monetsim.DB) (time.Duration, error) {
	res, err := monetsim.Execute(c.plans[q], db)
	if err != nil {
		return 0, err
	}
	got, err := ssb.ExtractRows(q, res.Cols)
	if err != nil {
		return 0, err
	}
	if !ssb.RowsEqual(got, c.refs[q]) {
		return 0, fmt.Errorf("monetsim %s: result differs from reference", q)
	}
	best := res.Runtime
	for i := 1; i < opt.repeats; i++ {
		r, err := monetsim.Execute(c.plans[q], db)
		if err != nil {
			return 0, err
		}
		if r.Runtime < best {
			best = r.Runtime
		}
	}
	return best, nil
}

// runFig1 regenerates Figure 1: the average over all 13 queries of the four
// headline systems.
func runFig1(opt options) error {
	c, err := getSSB(opt)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Figure 1: average runtime of all 13 SSB queries (SF %g)", opt.sf))
	var tMonet, tScalar, tVec, tCompr time.Duration
	var fUncompr, fCompr int
	for _, q := range ssb.Queries {
		t, err := timeMonet(opt, c, q, c.mdbWide)
		if err != nil {
			return err
		}
		tMonet += t
		_, ts, err := c.timedRun(opt, q, c.data.DB, core.UncompressedConfig(vector.Scalar))
		if err != nil {
			return err
		}
		tScalar += ts
		resV, tv, err := c.timedRun(opt, q, c.data.DB, core.UncompressedConfig(vector.Vec512))
		if err != nil {
			return err
		}
		tVec += tv
		assign, err := c.bestRuntimeAssign(opt, q)
		if err != nil {
			return err
		}
		resC, tc, err := c.runAssign(opt, q, assign, vector.Vec512, true)
		if err != nil {
			return err
		}
		tCompr += tc
		fUncompr += resV.Meas.Footprint()
		fCompr += resC.Meas.Footprint()
	}
	rows := []struct {
		name string
		t    time.Duration
	}{
		{"MonetDB (scalar, 64-bit)", tMonet},
		{"MorphStore (scalar, 64-bit)", tScalar},
		{"MorphStore (vectorized, 64-bit)", tVec},
		{"MorphStore (vectorized, compressed)", tCompr},
	}
	for _, r := range rows {
		fmt.Printf("%-38s %10.2f ms  (%.0f%% of MS scalar)\n",
			r.name, ms(r.t)/13, 100*float64(r.t)/float64(tScalar))
	}
	fmt.Printf("\nmemory footprint: compressed %.0f%% of uncompressed (paper: -52%%)\n",
		100*float64(fCompr)/float64(fUncompr))
	return nil
}

// runFig7 regenerates Figure 7: worst / uncompressed / static BP / best
// format combinations per query, for footprint and runtime.
func runFig7(opt options) error {
	c, err := getSSB(opt)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Figure 7: impact of the format combination (SF %g)", opt.sf))
	fmt.Printf("%-6s | %11s %11s %11s %11s | %9s %9s %9s %9s\n", "query",
		"worst[MiB]", "uncmp[MiB]", "stat[MiB]", "best[MiB]",
		"worst[ms]", "uncmp[ms]", "stat[ms]", "best[ms]")
	var fw, fu, fs, fb, tw, tu, tss, tb float64
	for _, q := range ssb.Queries {
		best, worst, err := c.footSearch(q)
		if err != nil {
			return err
		}
		static := staticAssign(c.plans[q])
		uncmp := core.NewAssignment()

		type cell struct {
			foot int
			t    time.Duration
		}
		run := func(a *core.Assignment) (cell, error) {
			res, t, err := c.runAssign(opt, q, a, vector.Vec512, false)
			if err != nil {
				return cell{}, err
			}
			return cell{res.Meas.Footprint(), t}, nil
		}
		var wc, uc, sc, bc cell
		if wc, err = run(worst); err != nil {
			return err
		}
		if uc, err = run(uncmp); err != nil {
			return err
		}
		if sc, err = run(static); err != nil {
			return err
		}
		// For the runtime "best" use the greedy/cost-based assignment; for
		// the footprint "best" the exhaustive search result.
		if bc, err = run(best); err != nil {
			return err
		}
		rtAssign, err := c.bestRuntimeAssign(opt, q)
		if err != nil {
			return err
		}
		_, bt, err := c.runAssign(opt, q, rtAssign, vector.Vec512, false)
		if err != nil {
			return err
		}
		if bt < bc.t {
			bc.t = bt
		}

		fmt.Printf("%-6s | %11.2f %11.2f %11.2f %11.2f | %9.2f %9.2f %9.2f %9.2f\n",
			q, mib(wc.foot), mib(uc.foot), mib(sc.foot), mib(bc.foot),
			ms(wc.t), ms(uc.t), ms(sc.t), ms(bc.t))
		fw += mib(wc.foot)
		fu += mib(uc.foot)
		fs += mib(sc.foot)
		fb += mib(bc.foot)
		tw += ms(wc.t)
		tu += ms(uc.t)
		tss += ms(sc.t)
		tb += ms(bc.t)
	}
	fmt.Printf("%-6s | %11.2f %11.2f %11.2f %11.2f | %9.2f %9.2f %9.2f %9.2f\n",
		"avg", fw/13, fu/13, fs/13, fb/13, tw/13, tu/13, tss/13, tb/13)
	fmt.Printf("\npaper shape: static BP ~37%% footprint, best ~35%%; best runtime ~66%% of\n")
	fmt.Printf("uncompressed on average; worst combination costs ~+11%% runtime.\n")
	return nil
}

// runFig8 regenerates Figure 8: no compression vs compressed base columns
// only vs compressed base + intermediates.
func runFig8(opt options) error {
	c, err := getSSB(opt)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Figure 8: compressing base data vs intermediates (SF %g)", opt.sf))
	fmt.Printf("%-6s | %11s %11s %11s | %9s %9s %9s\n", "query",
		"uncmp[MiB]", "base[MiB]", "b+int[MiB]", "uncmp[ms]", "base[ms]", "b+int[ms]")
	var f0, f1, f2, t0, t1, t2 float64
	for _, q := range ssb.Queries {
		full, err := c.costBased(q)
		if err != nil {
			return err
		}
		baseOnly := core.NewAssignment()
		for k, v := range full.Base {
			baseOnly.Base[k] = v
		}
		uncmp := core.NewAssignment()

		run := func(a *core.Assignment) (int, time.Duration, error) {
			res, t, err := c.runAssign(opt, q, a, vector.Vec512, false)
			if err != nil {
				return 0, 0, err
			}
			return res.Meas.Footprint(), t, nil
		}
		fu, tu, err := run(uncmp)
		if err != nil {
			return err
		}
		fb, tb, err := run(baseOnly)
		if err != nil {
			return err
		}
		fi, ti, err := run(full)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s | %11.2f %11.2f %11.2f | %9.2f %9.2f %9.2f\n",
			q, mib(fu), mib(fb), mib(fi), ms(tu), ms(tb), ms(ti))
		f0 += mib(fu)
		f1 += mib(fb)
		f2 += mib(fi)
		t0 += ms(tu)
		t1 += ms(tb)
		t2 += ms(ti)
	}
	fmt.Printf("%-6s | %11.2f %11.2f %11.2f | %9.2f %9.2f %9.2f\n",
		"avg", f0/13, f1/13, f2/13, t0/13, t1/13, t2/13)
	fmt.Printf("\npaper shape: base-only compression reaches ~54%% footprint / ~93%% runtime;\n")
	fmt.Printf("adding intermediates reaches ~35%% / ~66%% — intermediates matter more.\n")
	return nil
}

// runFig10 regenerates Figure 10: footprint of static BP vs the cost-based
// selection vs the actual best combination.
func runFig10(opt options) error {
	c, err := getSSB(opt)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Figure 10: cost-based format selection vs optimum (SF %g)", opt.sf))
	fmt.Printf("%-6s %14s %14s %14s\n", "query", "staticBP [MiB]", "costbased[MiB]", "best [MiB]")
	var fs, fc, fb float64
	for _, q := range ssb.Queries {
		static := staticAssign(c.plans[q])
		cost, err := c.costBased(q)
		if err != nil {
			return err
		}
		best, _, err := c.footSearch(q)
		if err != nil {
			return err
		}
		run := func(a *core.Assignment) (int, error) {
			res, _, err := c.runAssign(opt, q, a, vector.Vec512, false)
			if err != nil {
				return 0, err
			}
			return res.Meas.Footprint(), nil
		}
		s, err := run(static)
		if err != nil {
			return err
		}
		co, err := run(cost)
		if err != nil {
			return err
		}
		b, err := run(best)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %14.2f %14.2f %14.2f\n", q, mib(s), mib(co), mib(b))
		fs += mib(s)
		fc += mib(co)
		fb += mib(b)
	}
	fmt.Printf("%-6s %14.2f %14.2f %14.2f\n", "avg", fs/13, fc/13, fb/13)
	fmt.Println("\npaper shape: cost-based selection is virtually equal to the optimum.")
	return nil
}
