// Command msbench measures the building blocks of MorphStore-Go in
// isolation: per-format compression rate and (de)compression speed on the
// Table 1 columns, SWAR kernel throughput, morphing bandwidth, and the
// morsel-parallel operator drivers. It is the micro counterpart of
// cmd/msrepro's figure-level experiments and mirrors the evaluation axes of
// the authors' earlier compression survey (§2.1: compression rate vs
// compression speed vs decompression speed).
//
// With -json the collected measurements are emitted as a JSON document (for
// archiving runs as BENCH_*.json) instead of the human-readable tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/costmodel"
	"morphstore/internal/datagen"
	"morphstore/internal/dict"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/morph"
	"morphstore/internal/ops"
	"morphstore/internal/qerr"
	"morphstore/internal/stats"
	"morphstore/internal/vector"
)

// Record is one measurement of the run; the JSON archive is a flat list of
// these plus a small header.
type Record struct {
	Section string  `json:"section"`
	Name    string  `json:"name"`
	Metric  string  `json:"metric"`
	Value   float64 `json:"value"`
}

// Report is the -json output document.
type Report struct {
	N         int      `json:"n"`
	Seed      int64    `json:"seed"`
	Repeats   int      `json:"repeats"`
	GoMaxProc int      `json:"gomaxprocs"`
	Records   []Record `json:"records"`
}

type bench struct {
	jsonOut bool
	records []Record
}

// printf writes human-readable output unless JSON mode is active.
func (b *bench) printf(format string, args ...any) {
	if !b.jsonOut {
		fmt.Printf(format, args...)
	}
}

func (b *bench) record(section, name, metric string, value float64) {
	b.records = append(b.records, Record{Section: section, Name: name, Metric: metric, Value: value})
}

func main() {
	n := flag.Int("n", 1<<22, "column size in elements")
	seed := flag.Int64("seed", 42, "generator seed")
	repeats := flag.Int("repeats", 3, "repetitions (minimum reported)")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "max parallelism degree for the morsel-parallel section")
	trace := flag.String("trace", "", "write a JSON-lines execution trace of the observability section's query to this file")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	merge := flag.Bool("merge", false, "merge the report files given as arguments by per-metric median and emit the result (no benchmarks run)")
	compare := flag.String("compare", "", "baseline JSON report to gate against (exit 1 on regression)")
	against := flag.String("against", "", "with -compare: gate this already-recorded report instead of running benchmarks")
	tolerance := flag.Float64("tolerance", 0.25, "relative tolerance of the -compare regression gate")
	flag.Parse()

	if *merge {
		reps := make([]*Report, 0, flag.NArg())
		for _, path := range flag.Args() {
			reps = append(reps, loadReport(path))
		}
		merged, err := mergeReports(reps)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(merged)
		return
	}

	var rep *Report
	if *against != "" {
		if *compare == "" {
			log.Fatal("-against requires -compare")
		}
		rep = loadReport(*against)
	} else {
		if *par < 1 {
			*par = 1
		}
		b := &bench{jsonOut: *jsonOut}
		if err := run(b, *n, *seed, *repeats, *par, *trace); err != nil {
			log.Fatal(err)
		}
		rep = &Report{N: *n, Seed: *seed, Repeats: *repeats, GoMaxProc: runtime.GOMAXPROCS(0), Records: b.records}
		if *jsonOut {
			writeJSON(rep)
		}
	}
	if *compare != "" {
		base := loadReport(*compare)
		// The comparison goes to stderr so `-json -compare ... > run.json`
		// archives the run while the gate stays visible in the CI log.
		lines, failures := compareReports(base, rep, *tolerance)
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, l)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchmark regression gate FAILED (%d):\n", len(failures))
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "  "+f)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchmark regression gate passed")
	}
}

func loadReport(path string) *Report {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		log.Fatalf("parse report %s: %v", path, err)
	}
	return &rep
}

func writeJSON(rep *Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

func run(b *bench, n int, seed int64, repeats, par int, tracePath string) error {
	b.printf("codec micro-benchmarks, n=%d elements (%.0f MiB uncompressed)\n\n", n, float64(n*8)/(1<<20))

	for _, id := range datagen.All {
		vals := datagen.Generate(id, n, seed)
		b.printf("-- column %v --\n", id)
		b.printf("%-14s %10s %14s %14s %12s\n", "format", "rate", "compr [GB/s]", "decompr[GB/s]", "est. err")
		prof := stats.Collect(vals)
		for _, desc := range formats.AllDescs() {
			var col *columns.Column
			ct, err := minTime(repeats, func() error {
				var e error
				col, e = formats.Compress(vals, desc)
				return e
			})
			if err != nil {
				return err
			}
			codec, err := formats.Get(desc.Kind)
			if err != nil {
				return err
			}
			dst := make([]uint64, n)
			dt, err := minTime(repeats, func() error { return codec.Decompress(dst, col) })
			if err != nil {
				return err
			}
			est, err := costmodel.EstimateBytes(prof, desc)
			if err != nil {
				return err
			}
			rate := float64(col.PhysicalBytes()) / float64(n*8)
			errPct := 100 * (float64(est)/float64(col.PhysicalBytes()) - 1)
			b.printf("%-14v %9.1f%% %14.2f %14.2f %+11.1f%%\n",
				desc, 100*rate, gbps(n, ct), gbps(n, dt), errPct)
			name := id.String() + "/" + desc.String()
			b.record("codec", name, "rate", rate)
			b.record("codec", name, "compress_gbps", gbps(n, ct))
			b.record("codec", name, "decompress_gbps", gbps(n, dt))
			b.record("codec", name, "estimate_err_pct", errPct)
		}
		b.printf("\n")
	}

	// SWAR kernels vs scalar loops.
	b.printf("-- SWAR kernels (8-bit fields) vs element-at-a-time --\n")
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) % 251
	}
	col, err := formats.Compress(vals, columns.StaticBPDesc(8))
	if err != nil {
		return err
	}
	td, err := minTime(repeats, func() error {
		_, err := ops.SumStaticBPDirect(col)
		return err
	})
	if err != nil {
		return err
	}
	tg, err := minTime(repeats, func() error {
		_, _, err := ops.SumWhole(col, vector.Vec512)
		return err
	})
	if err != nil {
		return err
	}
	b.printf("sum on packed words (SWAR): %8.2f GB/s\n", gbps(n, td))
	b.printf("sum via de/re-compression:  %8.2f GB/s\n", gbps(n, tg))
	b.record("swar", "sum_direct", "gbps", gbps(n, td))
	b.record("swar", "sum_otf", "gbps", gbps(n, tg))

	ts, err := minTime(repeats, func() error {
		_, err := ops.SelectStaticBPDirect(col, bitutil.CmpLt, 16, columns.DeltaBPDesc)
		return err
	})
	if err != nil {
		return err
	}
	to, err := minTime(repeats, func() error {
		_, err := ops.Select(col, bitutil.CmpLt, 16, columns.DeltaBPDesc, vector.Vec512)
		return err
	})
	if err != nil {
		return err
	}
	b.printf("select on packed words:     %8.2f GB/s\n", gbps(n, ts))
	b.printf("select via de/re-compr.:    %8.2f GB/s\n", gbps(n, to))
	b.record("swar", "select_direct", "gbps", gbps(n, ts))
	b.record("swar", "select_otf", "gbps", gbps(n, to))

	// Morphing bandwidth.
	b.printf("\n-- morphing (DynBP -> StaticBP) --\n")
	src, err := formats.Compress(datagen.Generate(datagen.C1, n, seed), columns.DynBPDesc)
	if err != nil {
		return err
	}
	tm, err := minTime(repeats, func() error {
		_, err := morph.Morph(src, columns.StaticBPDesc(0))
		return err
	})
	if err != nil {
		return err
	}
	tg2, err := minTime(repeats, func() error {
		_, err := morph.Generic(src, columns.StaticBPDesc(0))
		return err
	})
	if err != nil {
		return err
	}
	b.printf("direct morph:     %8.2f GB/s\n", gbps(n, tm))
	b.printf("generic blockwise:%8.2f GB/s\n", gbps(n, tg2))
	b.record("morph", "direct", "gbps", gbps(n, tm))
	b.record("morph", "generic_blockwise", "gbps", gbps(n, tg2))

	// Morsel-parallel drivers: select and sum over a DynBP column at
	// increasing parallelism (1 = the sequential operator).
	b.printf("\n-- morsel-parallel kernels on DynBP (GOMAXPROCS=%d) --\n", runtime.GOMAXPROCS(0))
	selVals, needle := datagen.GenerateSelectWorkload(datagen.C1, n, seed)
	dynCol, err := formats.Compress(selVals, columns.DynBPDesc)
	if err != nil {
		return err
	}
	// Workloads for the join/calc/grouped-sum drivers: a half-matching
	// unique-key build side, a second value column, and a dense group-id
	// column, all DynBP-compressed like the probe/value column above.
	probeVals := make([]uint64, n)
	gidVals := make([]uint64, n)
	const nBuild, nGroups = 4096, 1024
	for i := range probeVals {
		probeVals[i] = selVals[i] % (2 * nBuild) // ~50% hit the build side
		gidVals[i] = uint64(i) % nGroups
	}
	probeCol, err := formats.Compress(probeVals, columns.DynBPDesc)
	if err != nil {
		return err
	}
	gidCol, err := formats.Compress(gidVals, columns.DynBPDesc)
	if err != nil {
		return err
	}
	calcCol, err := formats.Compress(datagen.Generate(datagen.C1, n, seed+1), columns.DynBPDesc)
	if err != nil {
		return err
	}
	buildVals := make([]uint64, nBuild)
	for i := range buildVals {
		buildVals[i] = uint64(i)
	}
	buildCol := columns.FromValues(buildVals)

	levels := []int{}
	for p := 1; p < par; p *= 2 {
		levels = append(levels, p)
	}
	levels = append(levels, par) // always measure the requested maximum
	for _, p := range levels {
		tp, err := minTime(repeats, func() error {
			_, err := ops.ParSelect(dynCol, bitutil.CmpEq, needle, columns.DeltaBPDesc, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		tsum, err := minTime(repeats, func() error {
			_, _, err := ops.ParSum(dynCol, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		tjoin, err := minTime(repeats, func() error {
			_, _, err := ops.ParJoinN1(probeCol, buildCol, columns.DeltaBPDesc, columns.DynBPDesc, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		tcalc, err := minTime(repeats, func() error {
			_, err := ops.ParCalcBinary(ops.CalcMul, dynCol, calcCol, columns.DynBPDesc, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		tgsum, err := minTime(repeats, func() error {
			_, err := ops.ParSumGrouped(gidCol, dynCol, nGroups, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		b.printf("par=%-2d  select: %8.2f GB/s   sum: %8.2f GB/s   joinn1: %8.2f GB/s   calc: %8.2f GB/s   sum_grouped: %8.2f GB/s\n",
			p, gbps(n, tp), gbps(n, tsum), gbps(n, tjoin), gbps(n, tcalc), gbps(n, tgsum))
		b.record("parallel", fmt.Sprintf("select_par%d", p), "gbps", gbps(n, tp))
		b.record("parallel", fmt.Sprintf("sum_par%d", p), "gbps", gbps(n, tsum))
		b.record("parallel", fmt.Sprintf("joinn1_par%d", p), "gbps", gbps(n, tjoin))
		b.record("parallel", fmt.Sprintf("calc_par%d", p), "gbps", gbps(n, tcalc))
		b.record("parallel", fmt.Sprintf("sum_grouped_par%d", p), "gbps", gbps(n, tgsum))
	}

	// Parallel grouping: GroupFirst over the dense group-id column and the
	// GroupNext refinement of its output with the probe-key column — the
	// per-worker-table / deterministic-merge / remap drivers at increasing
	// parallelism (1 = the sequential hash grouping).
	b.printf("\n-- parallel grouping (per-worker tables + deterministic merge) --\n")
	gids1, _, err := ops.GroupFirst(gidCol, columns.DynBPDesc, columns.UncomprDesc, vector.Vec512)
	if err != nil {
		return err
	}
	for _, p := range levels {
		tgf, err := minTime(repeats, func() error {
			_, _, err := ops.ParGroupFirst(gidCol, columns.DynBPDesc, columns.UncomprDesc, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		tgn, err := minTime(repeats, func() error {
			_, _, err := ops.ParGroupNext(gids1, probeCol, columns.DynBPDesc, columns.UncomprDesc, vector.Vec512, p)
			return err
		})
		if err != nil {
			return err
		}
		b.printf("par=%-2d  group_first: %8.2f GB/s   group_next: %8.2f GB/s\n",
			p, gbps(n, tgf), gbps(n, tgn))
		b.record("grouped", fmt.Sprintf("group_first_par%d", p), "gbps", gbps(n, tgf))
		b.record("grouped", fmt.Sprintf("group_next_par%d", p), "gbps", gbps(n, tgn))
	}

	// Parallel sorted-set operators: intersect/merge of two sorted position
	// lists (~50% and ~33% selectivity), split at shared value-range
	// boundaries (1 = the sequential two-pointer merge).
	b.printf("\n-- parallel sorted-set operators (value-range splits) --\n")
	setA := make([]uint64, 0, n/2)
	setB := make([]uint64, 0, n/3)
	for i := 0; i < n; i += 2 {
		setA = append(setA, uint64(i))
	}
	for i := 0; i < n; i += 3 {
		setB = append(setB, uint64(i))
	}
	setACol, err := formats.Compress(setA, columns.DeltaBPDesc)
	if err != nil {
		return err
	}
	setBCol, err := formats.Compress(setB, columns.DeltaBPDesc)
	if err != nil {
		return err
	}
	nSet := len(setA) + len(setB) // elements touched per run
	for _, p := range levels {
		ti, err := minTime(repeats, func() error {
			_, err := ops.ParIntersect(setACol, setBCol, columns.DeltaBPDesc, p)
			return err
		})
		if err != nil {
			return err
		}
		tu, err := minTime(repeats, func() error {
			_, err := ops.ParMerge(setACol, setBCol, columns.DeltaBPDesc, p)
			return err
		})
		if err != nil {
			return err
		}
		b.printf("par=%-2d  intersect: %8.2f GB/s   merge: %8.2f GB/s\n",
			p, gbps(nSet, ti), gbps(nSet, tu))
		b.record("setops", fmt.Sprintf("intersect_par%d", p), "gbps", gbps(nSet, ti))
		b.record("setops", fmt.Sprintf("merge_par%d", p), "gbps", gbps(nSet, tu))
	}

	// Compressed stitch: the cost of materializing a high-selectivity
	// operator output stream as a compressed column. "serial" is the old
	// single-writer recompression (the pre-stitch Amdahl tail), "concat" is
	// the new serial portion only — block-granular concatenation of
	// pre-compressed sections — and "par" is the full parallel stitch
	// (sectioned recompression by par workers plus the concat). The
	// serial_over_concat ratio is machine-speed invariant and is the
	// serial-stitch-cost reduction delivered by the compressed stitch.
	b.printf("\n-- compressed stitch (high-selectivity output streams, %d-way sections) --\n", stitchSections)
	posStream := make([]uint64, 0, n/2)
	for i := 0; i < n; i += 2 { // ~50% selectivity select positions
		posStream = append(posStream, uint64(i))
	}
	if err := stitchBench(b, repeats, par, "select_pos/delta+bp", posStream, columns.DeltaBPDesc); err != nil {
		return err
	}
	if err := stitchBench(b, repeats, par, "project_vals/dyn_bp", datagen.Generate(datagen.C1, n, seed+2), columns.DynBPDesc); err != nil {
		return err
	}

	// Multi-query scheduling: one plan prepared once on an engine whose
	// worker budget is shared by C concurrent query streams. Throughput in
	// queries/s shows how the budget re-division behaves as streams pile up
	// (conc=1 is the single-query baseline).
	b.printf("\n-- multi-query scheduling (prepared plan, %d-worker shared budget) --\n", par)
	qdb := core.NewDB()
	qdb.AddTable("t", map[string][]uint64{"a": gidVals, "b": probeVals})
	enc, err := qdb.Encode(map[string]columns.FormatDesc{
		"t.a": columns.DynBPDesc, "t.b": columns.StaticBPDesc(0)})
	if err != nil {
		return err
	}
	pb := core.NewBuilder()
	pa := pb.Scan("t", "a")
	pbcol := pb.Scan("t", "b")
	pos := pb.Between("pos", pa, nGroups/4, 3*nGroups/4) // ~50% selectivity
	vals2 := pb.Project("vals", pbcol, pos)
	pb.Result(pb.SumWhole("total", vals2))
	plan, err := pb.Build()
	if err != nil {
		return err
	}
	eng := core.NewEngine(enc, core.WithParallelism(par), core.WithStyle(vector.Vec512))
	pq, err := eng.Prepare(plan, core.WithFormats(map[string]columns.FormatDesc{
		"pos": columns.DeltaBPDesc, "vals": columns.DynBPDesc}))
	if err != nil {
		return err
	}
	const queriesPerStream = 2
	concs := []int{1, par, 4 * par}
	for i, conc := range concs {
		if i > 0 && conc == concs[i-1] {
			continue
		}
		t, err := minTime(repeats, func() error {
			var wg sync.WaitGroup
			errCh := make(chan error, conc)
			for s := 0; s < conc; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for q := 0; q < queriesPerStream; q++ {
						if _, err := pq.Execute(context.Background()); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			return <-errCh
		})
		if err != nil {
			return err
		}
		qps := float64(conc*queriesPerStream) / t.Seconds()
		b.printf("conc=%-3d %8.1f queries/s\n", conc, qps)
		b.record("multiquery", fmt.Sprintf("conc%d", conc), "qps", qps)
	}

	// Overload: the same prepared plan driven at 4x over-admission against a
	// slot-bounded engine with a small bounded queue. Shed rate and the
	// admission-wait distribution of the admitted queries characterize the
	// overload-protection layer; goodput (qps of completed queries) shows
	// what the engine still delivers under pressure. A graceful Close drains
	// the engine at the end. All informational: the numbers depend on the
	// runner's core count and scheduler like the multiquery qps.
	overClients := 4 * par
	b.printf("\n-- overload (%d slots, %d-deep queue, %d closed-loop clients) --\n",
		par, 2*par, overClients)
	oeng := core.NewEngine(enc, core.WithParallelism(par), core.WithStyle(vector.Vec512),
		core.WithMaxConcurrentQueries(par),
		core.WithAdmissionQueue(2*par, 5*time.Millisecond))
	opq, err := oeng.Prepare(plan, core.WithFormats(map[string]columns.FormatDesc{
		"pos": columns.DeltaBPDesc, "vals": columns.DynBPDesc}))
	if err != nil {
		return err
	}
	const queriesPerClient = 4
	var omu sync.Mutex
	var waits []time.Duration
	var shedCount, doneCount int
	startOver := time.Now()
	var owg sync.WaitGroup
	oerrCh := make(chan error, overClients)
	for c := 0; c < overClients; c++ {
		owg.Add(1)
		go func() {
			defer owg.Done()
			for q := 0; q < queriesPerClient; q++ {
				var s metrics.QueryStats
				_, err := opq.Execute(context.Background(), core.WithExecStats(&s))
				omu.Lock()
				switch {
				case err == nil:
					doneCount++
					waits = append(waits, s.AdmissionWait)
				case qerr.IsRetryable(err):
					shedCount++ // admission shed: the closed-loop client moves on
				default:
					omu.Unlock()
					oerrCh <- err
					return
				}
				omu.Unlock()
			}
		}()
	}
	owg.Wait()
	overElapsed := time.Since(startOver)
	close(oerrCh)
	if err := <-oerrCh; err != nil {
		return err
	}
	if err := oeng.Close(context.Background()); err != nil {
		return err
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	pct := func(p float64) time.Duration {
		if len(waits) == 0 {
			return 0
		}
		i := int(p * float64(len(waits)-1))
		return waits[i]
	}
	shedRate := float64(shedCount) / float64(shedCount+doneCount)
	goodput := float64(doneCount) / overElapsed.Seconds()
	b.printf("shed %d of %d (%.0f%%), goodput %.1f queries/s, admission wait p50 %v p99 %v\n",
		shedCount, shedCount+doneCount, 100*shedRate, goodput, pct(0.50), pct(0.99))
	b.record("overload", "storm", "shed_rate", shedRate)
	b.record("overload", "storm", "qps", goodput)
	b.record("overload", "storm", "wait_p50_ms", pct(0.50).Seconds()*1e3)
	b.record("overload", "storm", "wait_p99_ms", pct(0.99).Seconds()*1e3)

	// Observability: the stats collector and tracer on the same prepared
	// query the multi-query section used. metrics_overhead is the projected
	// slowdown of a collector-DETACHED execution — the per-event cost of the
	// nil-receiver bookkeeping times the events one execution performs,
	// relative to the execution's runtime — gated against the absolute 2%
	// ceiling (compare.go: gateCeiling). The attached and traced ratios are
	// informational; regressions on the detached hot path itself are caught
	// by the gated throughput metrics above, which all run collector-free.
	b.printf("\n-- observability (per-query stats collection, JSONL tracing) --\n")
	var qs metrics.QueryStats
	if _, err := pq.Execute(context.Background(), core.WithExecStats(&qs)); err != nil {
		return err
	}
	tPlain, err := minTime(repeats, func() error {
		_, err := pq.Execute(context.Background())
		return err
	})
	if err != nil {
		return err
	}
	tStats, err := minTime(repeats, func() error {
		var s metrics.QueryStats
		_, err := pq.Execute(context.Background(), core.WithExecStats(&s))
		return err
	})
	if err != nil {
		return err
	}
	tTrace, err := minTime(repeats, func() error {
		_, err := pq.Execute(context.Background(), core.WithTracer(metrics.NewJSONLTracer(io.Discard)))
		return err
	})
	if err != nil {
		return err
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		tr := metrics.NewJSONLTracer(f)
		if _, err := pq.Execute(context.Background(), core.WithTracer(tr)); err != nil {
			return err
		}
		if err := tr.Err(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		b.printf("execution trace written to %s\n", tracePath)
	}
	// Per-event cost of the detached bookkeeping: nil-receiver collector
	// calls, the exact operations a detached execution performs. The
	// rotating receiver index keeps the compiler from hoisting the nil check
	// out of the loop.
	nilNCs := [2]*metrics.NodeCollector{}
	const bookCalls = 1 << 24
	startBook := time.Now()
	for i := 0; i < bookCalls; i++ {
		if nilNCs[i&1].Shards(0) != nil {
			return fmt.Errorf("nil collector returned shards")
		}
	}
	perCall := float64(time.Since(startBook).Nanoseconds()) / bookCalls
	// Events per detached execution: one shard check per morsel claim, plus
	// a small constant of per-node calls (Node, Begin, Finish, lease
	// observer check); the attached run's stats tree supplies the counts.
	events := int64(5 * len(qs.Nodes))
	for _, ns := range qs.Nodes {
		events += ns.Morsels
	}
	overheadPct := 100 * perCall * float64(events) / float64(tPlain.Nanoseconds())
	var kernel time.Duration
	var morsels int64
	for _, ns := range qs.Nodes {
		kernel += ns.Kernel
		morsels += ns.Morsels
	}
	b.printf("query: %d operators, %d morsels, %v kernel time (stats-collected run)\n", len(qs.Nodes), morsels, kernel)
	b.printf("detached bookkeeping: %5.2f ns/event x %d events = %.4f%% of the %v query  (gate ceiling 2%%)\n",
		perCall, events, overheadPct, tPlain)
	b.printf("attached ratios vs plain: stats %.3fx, jsonl trace %.3fx\n",
		tStats.Seconds()/tPlain.Seconds(), tTrace.Seconds()/tPlain.Seconds())
	b.record("metrics", "metrics_overhead", "overhead_pct", overheadPct)
	b.record("metrics", "detached_bookkeeping", "ns_per_hit", perCall)
	b.record("metrics", "stats_attached", "ratio_vs_plain", tStats.Seconds()/tPlain.Seconds())
	b.record("metrics", "jsonl_trace", "ratio_vs_plain", tTrace.Seconds()/tPlain.Seconds())

	// Write path: streaming appends into a writable table, the merged-read
	// cost of the snapshot path, and what a remorph fold buys back.
	// append_stream/rows_per_s depends on allocator and memcpy speed
	// (informational, never gated). empty_delta_read/overhead_pct is the
	// cost the snapshot path adds to a query against a writable table whose
	// delta is empty — an empty delta serves the main column itself, so the
	// read path must stay frozen-speed; a same-machine timing ratio, gated
	// against the same absolute 2% ceiling as the observability overhead
	// (compare.go: gateCeiling). The dirty-delta and post-remorph reads are
	// informational: a delta with deletions materializes an uncompressed
	// merged view (slower, by design), and the fold re-picks formats with
	// the cost model, so the recovered read may land faster or slower than
	// the hand-encoded frozen baseline.
	b.printf("\n-- ingest (delta appends, merged reads, remorph recovery) --\n")
	const appendBatch = 1 << 14
	appendTotal := n / 4
	tApp, err := minTime(repeats, func() error {
		adb := core.NewDB()
		if err := adb.AddTable("s", map[string][]uint64{"v": probeVals[:appendBatch]}); err != nil {
			return err
		}
		aeng := core.NewEngine(adb, core.WithParallelism(par))
		for off := 0; off < appendTotal; off += appendBatch {
			end := off + appendBatch
			if end > appendTotal {
				end = appendTotal
			}
			if err := aeng.Append(context.Background(), "s",
				map[string][]uint64{"v": probeVals[off:end]}); err != nil {
				return err
			}
		}
		return aeng.Close(context.Background())
	})
	if err != nil {
		return err
	}
	rowsPerS := float64(appendTotal) / tApp.Seconds()

	weng := core.NewEngine(enc, core.WithParallelism(par), core.WithStyle(vector.Vec512))
	wq, err := weng.Prepare(plan, core.WithAutoMorph(true))
	if err != nil {
		return err
	}
	runWQ := func() error {
		_, err := wq.Execute(context.Background())
		return err
	}
	// Frozen baseline and empty-delta run use the same engine and the same
	// prepared query — the only difference is the zero-row append between
	// them, which makes the table writable without changing it: executions
	// then pin snapshots and scans resolve through the (empty) delta — the
	// exact state the 2% ceiling is about. A cross-engine comparison would
	// measure heap-layout noise instead.
	tFrozen, err := minTime(repeats, runWQ)
	if err != nil {
		return err
	}
	if err := weng.Append(context.Background(), "t", map[string][]uint64{"a": {}, "b": {}}); err != nil {
		return err
	}
	tEmpty, err := minTime(repeats, runWQ)
	if err != nil {
		return err
	}
	emptyPct := 100 * (tEmpty.Seconds()/tFrozen.Seconds() - 1)
	if err := weng.Append(context.Background(), "t",
		map[string][]uint64{"a": gidVals[:4096], "b": probeVals[:4096]}); err != nil {
		return err
	}
	if err := weng.Delete(context.Background(), "t", []uint64{0, 1, 2, 3, 5, 8, 13, 21}); err != nil {
		return err
	}
	tDirty, err := minTime(repeats, runWQ)
	if err != nil {
		return err
	}
	if err := weng.Remorph(context.Background(), "t"); err != nil {
		return err
	}
	tAfter, err := minTime(repeats, runWQ)
	if err != nil {
		return err
	}
	recoveryPct := 100 * (tAfter.Seconds()/tFrozen.Seconds() - 1)
	if err := weng.Close(context.Background()); err != nil {
		return err
	}
	b.printf("append stream: %d rows in %d-row batches at %.1f Mrows/s\n",
		appendTotal, appendBatch, rowsPerS/1e6)
	b.printf("merged read vs frozen %v: empty delta %+.3f%% (gate ceiling 2%%), dirty delta %.3fx, post-remorph %+.3f%%\n",
		tFrozen, emptyPct, tDirty.Seconds()/tFrozen.Seconds(), recoveryPct)
	b.record("ingest", "append_stream", "rows_per_s", rowsPerS)
	b.record("ingest", "empty_delta_read", "overhead_pct", emptyPct)
	b.record("ingest", "dirty_delta_read", "ratio_vs_frozen", tDirty.Seconds()/tFrozen.Seconds())
	b.record("ingest", "post_remorph_read", "recovery_pct", recoveryPct)

	// String dictionaries: translation throughput (Dict.Add over a repeating
	// string stream), the cost a string-equality predicate adds over the
	// identical pre-translated integer predicate, and the dictionary's
	// memory footprint. translate/rows_per_s and dict_memory/bytes are
	// informational; string_predicate/overhead_pct is a same-machine timing
	// ratio gated against the absolute 2% ceiling (compare.go: gateCeiling)
	// — after Prepare-time translation both queries run the same select
	// kernel over the same ID column, so the gate trips if per-row work ever
	// leaks into the string execute path.
	b.printf("\n-- dict (string translation, string-predicate overhead) --\n")
	dictRows := n / 4
	pool := make([]string, 1024)
	for i := range pool {
		pool[i] = fmt.Sprintf("str%06d", (i*7919)%1000003)
	}
	strsIn := make([]string, dictRows)
	for i := range strsIn {
		strsIn[i] = pool[(i*31)%len(pool)]
	}
	tTr, err := minTime(repeats, func() error {
		d := dict.New()
		_, err := d.Add(strsIn)
		return err
	})
	if err != nil {
		return err
	}
	trRowsPerS := float64(dictRows) / tTr.Seconds()

	sdb := core.NewDB()
	if err := sdb.AddStringColumn("t", "s", strsIn); err != nil {
		return err
	}
	dictBytes := sdb.Dict("t", "s").Snap().Bytes()
	ids, err := formats.Decompress(sdb.Tables["t"].Cols["s"])
	if err != nil {
		return err
	}
	idb := core.NewDB()
	if err := idb.AddTable("t", map[string][]uint64{"s": ids}); err != nil {
		return err
	}
	sb := core.NewBuilder()
	sb.Result(sb.SelectStrEq("pos", sb.Scan("t", "s"), pool[17]))
	strPlan, err := sb.Build()
	if err != nil {
		return err
	}
	targetID, ok := sdb.Dict("t", "s").Snap().ID(pool[17])
	if !ok {
		return fmt.Errorf("msbench: dictionary lost %q", pool[17])
	}
	ib := core.NewBuilder()
	ib.Result(ib.Select("pos", ib.Scan("t", "s"), bitutil.CmpEq, targetID))
	idPlan, err := ib.Build()
	if err != nil {
		return err
	}
	seng := core.NewEngine(sdb, core.WithParallelism(par))
	ieng := core.NewEngine(idb, core.WithParallelism(par))
	sq, err := seng.Prepare(strPlan, core.WithAutoMorph(true))
	if err != nil {
		return err
	}
	iq, err := ieng.Prepare(idPlan, core.WithAutoMorph(true))
	if err != nil {
		return err
	}
	// Warm both prepared queries before timing: the first executions pay
	// one-time allocator and page-placement costs that would otherwise
	// dominate the ratio (the timed loop is min-of-repeats, but min over a
	// cold query is still cold).
	for i := 0; i < 3; i++ {
		if _, err := sq.Execute(context.Background()); err != nil {
			return err
		}
		if _, err := iq.Execute(context.Background()); err != nil {
			return err
		}
	}
	// Paired timing: each iteration runs both queries back to back (order
	// alternating), so slow machine drift — page reclaim, frequency shifts,
	// sibling jobs — hits both sides equally instead of whichever block
	// happened to run second. Scheduling noise on these microsecond-scale
	// queries is one-sided (delays only add), so the gated ratio compares
	// the two interleaved minima, each converging on the undisturbed
	// runtime given enough pairs; two separately-timed min-of-repeats
	// blocks swing several percent either way, well past the 2% gate.
	pairs := 20 * repeats
	var tStr, tID time.Duration
	for r := 0; r < pairs; r++ {
		var dStr, dID time.Duration
		timeOne := func(q *core.Prepared, d *time.Duration) error {
			start := time.Now()
			_, err := q.Execute(context.Background())
			*d = time.Since(start)
			return err
		}
		first, second, fd, sd := sq, iq, &dStr, &dID
		if r%2 == 1 {
			first, second, fd, sd = iq, sq, &dID, &dStr
		}
		if err := timeOne(first, fd); err != nil {
			return err
		}
		if err := timeOne(second, sd); err != nil {
			return err
		}
		if tStr == 0 || dStr < tStr {
			tStr = dStr
		}
		if tID == 0 || dID < tID {
			tID = dID
		}
	}
	strPct := 100 * (tStr.Seconds()/tID.Seconds() - 1)
	if err := seng.Close(context.Background()); err != nil {
		return err
	}
	if err := ieng.Close(context.Background()); err != nil {
		return err
	}
	b.printf("translate: %d rows (%d distinct) at %.1f Mrows/s, dict %d bytes\n",
		dictRows, len(pool), trRowsPerS/1e6, dictBytes)
	b.printf("string predicate vs pre-translated ID predicate: %+.3f%% over %d interleaved pairs (min %v vs %v, gate ceiling 2%%)\n",
		strPct, pairs, tStr, tID)
	b.record("dict", "translate", "rows_per_s", trRowsPerS)
	b.record("dict", "string_predicate", "overhead_pct", strPct)
	b.record("dict", "dict_memory", "bytes", float64(dictBytes))

	// Fault-point overhead: the per-call cost of a disarmed fault point (one
	// atomic pointer load) on the morsel hot path. Informational — recorded
	// so the cost of shipping the fault-injection harness in production
	// builds stays visible, but never gated (classifyMetric: skip).
	b.printf("\n-- fault-injection harness (disarmed) --\n")
	const hits = 1 << 24
	startHits := time.Now()
	for i := 0; i < hits; i++ {
		if err := faultpoint.MorselClaim.Hit(); err != nil {
			return err
		}
	}
	perHit := float64(time.Since(startHits).Nanoseconds()) / hits
	b.printf("disarmed Hit: %6.2f ns/call over %d calls\n", perHit, hits)
	b.record("faultpoint", "faultpoint_overhead", "ns_per_hit", perHit)
	return nil
}

// stitchSections is the fixed section count of the stitch microbenchmark's
// concat-only measurement, so the recorded concat cost does not depend on
// the -par flag.
const stitchSections = 8

// stitchBench measures the three stitch costs for one output stream shape
// and target format and records them under the "stitch" section.
func stitchBench(b *bench, repeats, par int, name string, stream []uint64, desc columns.FormatDesc) error {
	total := len(stream)
	// Ragged chunks emulate per-morsel kernel outputs under selectivity skew.
	chunks := make([][]uint64, 0, stitchSections)
	for i, off := 0, 0; i < stitchSections; i++ {
		end := (total * (i + 1)) / stitchSections
		end -= (i * 53) % 97 // ragged, non-block-aligned cut
		if end < off {
			end = off
		}
		if i == stitchSections-1 {
			end = total
		}
		chunks = append(chunks, stream[off:end])
		off = end
	}
	tSerial, err := minTime(repeats, func() error {
		_, err := ops.StitchCompressed(desc, total, chunks, 1)
		return err
	})
	if err != nil {
		return err
	}
	ranges := formats.SplitRange(total, stitchSections, formats.ConcatAlign(desc.Kind))
	if ranges == nil {
		// Streams this small never take the sectioned stitch path; skip the
		// section instead of failing the whole run (tiny -n values).
		b.printf("%-22s skipped: stream of %d elements is below the sectioning threshold\n", name, total)
		return nil
	}
	parts := make([]*columns.Column, len(ranges))
	for i, pt := range ranges {
		var prev uint64
		if pt.Start > 0 {
			prev = stream[pt.Start-1]
		}
		w, err := formats.NewSectionWriter(desc, pt.Count, prev, pt.Start > 0)
		if err != nil {
			return err
		}
		if err := w.Write(stream[pt.Start : pt.Start+pt.Count]); err != nil {
			return err
		}
		if parts[i], err = w.Close(); err != nil {
			return err
		}
	}
	tConcat, err := minTime(repeats, func() error {
		_, err := formats.ConcatCompressed(desc, parts)
		return err
	})
	if err != nil {
		return err
	}
	tPar, err := minTime(repeats, func() error {
		_, err := ops.StitchCompressed(desc, total, chunks, par)
		return err
	})
	if err != nil {
		return err
	}
	speedup := tSerial.Seconds() / tConcat.Seconds()
	b.printf("%-22s serial: %8.2f GB/s   concat-only: %8.2f GB/s   par=%d: %8.2f GB/s   serial/concat: %5.1fx\n",
		name, gbps(total, tSerial), gbps(total, tConcat), par, gbps(total, tPar), speedup)
	b.record("stitch", name, "serial_gbps", gbps(total, tSerial))
	b.record("stitch", name, "concat_gbps", gbps(total, tConcat))
	b.record("stitch", name, "par_gbps", gbps(total, tPar))
	b.record("stitch", name, "serial_over_concat", speedup)
	return nil
}

func minTime(repeats int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func gbps(n int, d time.Duration) float64 {
	return float64(n*8) / d.Seconds() / 1e9
}
