// Command msbench measures the building blocks of MorphStore-Go in
// isolation: per-format compression rate and (de)compression speed on the
// Table 1 columns, SWAR kernel throughput, and morphing bandwidth. It is the
// micro counterpart of cmd/msrepro's figure-level experiments and mirrors
// the evaluation axes of the authors' earlier compression survey (§2.1:
// compression rate vs compression speed vs decompression speed).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/costmodel"
	"morphstore/internal/datagen"
	"morphstore/internal/formats"
	"morphstore/internal/morph"
	"morphstore/internal/ops"
	"morphstore/internal/stats"
	"morphstore/internal/vector"
)

func main() {
	n := flag.Int("n", 1<<22, "column size in elements")
	seed := flag.Int64("seed", 42, "generator seed")
	repeats := flag.Int("repeats", 3, "repetitions (minimum reported)")
	flag.Parse()

	if err := run(*n, *seed, *repeats); err != nil {
		log.Fatal(err)
	}
}

func run(n int, seed int64, repeats int) error {
	fmt.Printf("codec micro-benchmarks, n=%d elements (%.0f MiB uncompressed)\n\n", n, float64(n*8)/(1<<20))

	for _, id := range datagen.All {
		vals := datagen.Generate(id, n, seed)
		fmt.Printf("-- column %v --\n", id)
		fmt.Printf("%-14s %10s %14s %14s %12s\n", "format", "rate", "compr [GB/s]", "decompr[GB/s]", "est. err")
		prof := costmodelProfile(vals)
		for _, desc := range formats.AllDescs() {
			var col *columns.Column
			ct, err := minTime(repeats, func() error {
				var e error
				col, e = formats.Compress(vals, desc)
				return e
			})
			if err != nil {
				return err
			}
			codec, err := formats.Get(desc.Kind)
			if err != nil {
				return err
			}
			dst := make([]uint64, n)
			dt, err := minTime(repeats, func() error { return codec.Decompress(dst, col) })
			if err != nil {
				return err
			}
			est, err := costmodel.EstimateBytes(prof, desc)
			if err != nil {
				return err
			}
			rate := float64(col.PhysicalBytes()) / float64(n*8)
			errPct := 100 * (float64(est)/float64(col.PhysicalBytes()) - 1)
			fmt.Printf("%-14v %9.1f%% %14.2f %14.2f %+11.1f%%\n",
				desc, 100*rate, gbps(n, ct), gbps(n, dt), errPct)
		}
		fmt.Println()
	}

	// SWAR kernels vs scalar loops.
	fmt.Println("-- SWAR kernels (8-bit fields) vs element-at-a-time --")
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) % 251
	}
	col, err := formats.Compress(vals, columns.StaticBPDesc(8))
	if err != nil {
		return err
	}
	td, err := minTime(repeats, func() error {
		_, err := ops.SumStaticBPDirect(col)
		return err
	})
	if err != nil {
		return err
	}
	tg, err := minTime(repeats, func() error {
		_, _, err := ops.SumWhole(col, vector.Vec512)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("sum on packed words (SWAR): %8.2f GB/s\n", gbps(n, td))
	fmt.Printf("sum via de/re-compression:  %8.2f GB/s\n", gbps(n, tg))

	ts, err := minTime(repeats, func() error {
		_, err := ops.SelectStaticBPDirect(col, bitutil.CmpLt, 16, columns.DeltaBPDesc)
		return err
	})
	if err != nil {
		return err
	}
	to, err := minTime(repeats, func() error {
		_, err := ops.Select(col, bitutil.CmpLt, 16, columns.DeltaBPDesc, vector.Vec512)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("select on packed words:     %8.2f GB/s\n", gbps(n, ts))
	fmt.Printf("select via de/re-compr.:    %8.2f GB/s\n", gbps(n, to))

	// Morphing bandwidth.
	fmt.Println("\n-- morphing (DynBP -> StaticBP) --")
	src, err := formats.Compress(datagen.Generate(datagen.C1, n, seed), columns.DynBPDesc)
	if err != nil {
		return err
	}
	tm, err := minTime(repeats, func() error {
		_, err := morph.Morph(src, columns.StaticBPDesc(0))
		return err
	})
	if err != nil {
		return err
	}
	tg2, err := minTime(repeats, func() error {
		_, err := morph.Generic(src, columns.StaticBPDesc(0))
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("direct morph:     %8.2f GB/s\n", gbps(n, tm))
	fmt.Printf("generic blockwise:%8.2f GB/s\n", gbps(n, tg2))
	return nil
}

func costmodelProfile(vals []uint64) *stats.Profile {
	return stats.Collect(vals)
}

func minTime(repeats int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func gbps(n int, d time.Duration) float64 {
	return float64(n*8) / d.Seconds() / 1e9
}
