package main

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the benchmark-regression gate behind the -compare
// flag: a fresh run is compared against a checked-in baseline JSON report.
//
// Raw GB/s numbers are not portable across machines (the baseline is
// recorded once, CI runners vary), so the gate is made machine-speed
// invariant: the median run/baseline ratio over all throughput metrics is
// taken as the machine's speed scale, and each individual metric is gated on
// its deviation from that scale. A uniformly slower runner shifts every
// ratio equally and passes; a kernel regression shifts only its own metrics
// and fails once the deviation exceeds the tolerance. Compression rates are
// machine-independent and gated on their absolute ratio.

// gatedKind classifies a metric for the regression gate.
type gatedKind int

const (
	gateSkip       gatedKind = iota // not a performance metric (e.g. estimate_err_pct)
	gateThroughput                  // higher is better, machine-dependent (GB/s)
	gateRate                        // lower is better, machine-independent (compressed/uncompressed)
	gateInfo                        // reported and included in the speed scale, but never failed
	gateRatio                       // higher is better, machine-independent speedup ratio
	gateCeiling                     // lower is better, machine-invariant, absolute ceiling (overhead percentages)
)

func classifyMetric(section, metric string) gatedKind {
	switch {
	case metric == "compress_gbps":
		// Compression timings run the allocation-heavy writer path; their
		// process-to-process noise (GC pacing, heap layout) exceeds ±30%
		// even at min-of-10 repeats, so they inform the speed scale but
		// cannot carry a hard gate.
		return gateInfo
	case metric == "concat_gbps":
		// The block-granular concat finishes in tens of microseconds (it is
		// a handful of memcpys), so its timing is dominated by allocator
		// and page-placement noise like compress_gbps: informational only.
		return gateInfo
	case metric == "qps":
		// Multi-query throughput depends on the runner's core count, which
		// the single-scale speed normalization cannot factor out (a 1-core
		// baseline understates conc>1 on multi-core runners and vice
		// versa): informational, like compress_gbps.
		return gateInfo
	case metric == "gbps" || strings.HasSuffix(metric, "_gbps"):
		return gateThroughput
	case metric == "rate":
		return gateRate
	case metric == "overhead_pct":
		// The observability layer's projected detached-instrumentation
		// slowdown (see the msbench "metrics" section): a ratio of
		// same-machine timings, so machine-invariant, gated against the
		// absolute overheadCeilingPct budget rather than the baseline value.
		// It is excluded from the speed scale (only gateThroughput/gateInfo
		// feed it), so this ratio cannot skew the throughput gates.
		return gateCeiling
	case metric == "serial_over_concat":
		// The compressed stitch's serial-cost reduction: machine-invariant
		// (a ratio of two same-machine timings), gated so a change that
		// reintroduces per-block work in the concat — collapsing the
		// hundreds-fold ratio towards 1x — fails loudly. Its denominator is
		// the same microsecond-scale concat timing that makes concat_gbps
		// informational, so the gate uses the wide ratioFloorFrac budget
		// instead of the standard tolerance.
		return gateRatio
	default:
		return gateSkip
	}
}

// ratioFloorFrac is the gateRatio failure floor: a run's speedup ratio below
// this fraction of the baseline's fails. It is deliberately loose — the
// denominator (block-granular concat) is a tens-of-microseconds timing whose
// process-to-process noise can halve the ratio spuriously — because a real
// regression (per-block or per-element work back in the concat path)
// collapses the hundreds-fold ratio by well over an order of magnitude.
const ratioFloorFrac = 0.2

// overheadCeilingPct is the gateCeiling failure line: the observability
// layer's projected slowdown with no collector attached must stay below 2%
// of query runtime (the acceptance budget; the measured value sits around
// two orders of magnitude under it, so the gate only trips when someone puts
// real work — an allocation, a lock, a clock read — on the detached path).
const overheadCeilingPct = 2.0

func recordKey(r Record) string { return r.Section + "/" + r.Name + "/" + r.Metric }

// compareReports gates run against base with the given relative tolerance
// (e.g. 0.25 = fail a throughput metric more than 25% below the scaled
// baseline). It returns human-readable report lines and the list of
// failures; an empty failure list means the gate passes.
func compareReports(base, run *Report, tolerance float64) (lines, failures []string) {
	if base.N != run.N || base.Seed != run.Seed {
		return lines, []string{fmt.Sprintf(
			"workload mismatch: baseline n=%d seed=%d vs run n=%d seed=%d — regenerate the baseline for the new workload",
			base.N, base.Seed, run.N, run.Seed)}
	}
	baseByKey := make(map[string]Record, len(base.Records))
	for _, r := range base.Records {
		baseByKey[recordKey(r)] = r
	}
	runByKey := make(map[string]Record, len(run.Records))
	for _, r := range run.Records {
		runByKey[recordKey(r)] = r
	}

	// Machine speed scale: median run/base ratio over throughput metrics.
	var ratios []float64
	for key, br := range baseByKey {
		kind := classifyMetric(br.Section, br.Metric)
		if (kind != gateThroughput && kind != gateInfo) || br.Value <= 0 {
			continue
		}
		if rr, ok := runByKey[key]; ok && rr.Value > 0 {
			ratios = append(ratios, rr.Value/br.Value)
		}
	}
	if len(ratios) == 0 {
		return lines, []string{"no throughput metrics shared between run and baseline"}
	}
	sort.Float64s(ratios)
	scale := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		scale = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	lines = append(lines, fmt.Sprintf("speed scale run/baseline = %.3f (median over %d throughput metrics), tolerance %.0f%%",
		scale, len(ratios), 100*tolerance))

	// Deterministic order: walk the baseline records as recorded.
	for _, br := range base.Records {
		kind := classifyMetric(br.Section, br.Metric)
		if kind == gateSkip {
			continue
		}
		key := recordKey(br)
		rr, ok := runByKey[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from run", key))
			continue
		}
		switch kind {
		case gateThroughput, gateInfo:
			if br.Value <= 0 {
				lines = append(lines, fmt.Sprintf("  %-55s baseline value %g invalid, NOT GATED — regenerate the baseline", key, br.Value))
				continue
			}
			norm := rr.Value / br.Value / scale
			status := "ok"
			if kind == gateInfo {
				status = "info"
			} else if norm < 1-tolerance {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.3f GB/s vs baseline %.3f GB/s (%.0f%% below machine scale)",
					key, rr.Value, br.Value, 100*(1-norm)))
			}
			lines = append(lines, fmt.Sprintf("  %-55s %8.3f -> %8.3f  norm %.2fx  %s", key, br.Value, rr.Value, norm, status))
		case gateRate:
			status := "ok"
			if br.Value > 0 && rr.Value > br.Value*(1+tolerance) {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: compression rate %.4f vs baseline %.4f",
					key, rr.Value, br.Value))
			}
			lines = append(lines, fmt.Sprintf("  %-55s %8.4f -> %8.4f  %s", key, br.Value, rr.Value, status))
		case gateRatio:
			status := "ok"
			if br.Value > 0 && rr.Value < br.Value*ratioFloorFrac {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: speedup ratio %.1fx vs baseline %.1fx",
					key, rr.Value, br.Value))
			}
			lines = append(lines, fmt.Sprintf("  %-55s %7.1fx -> %7.1fx  %s", key, br.Value, rr.Value, status))
		case gateCeiling:
			status := "ok"
			if rr.Value > overheadCeilingPct {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: overhead %.3f%% exceeds the %.1f%% ceiling",
					key, rr.Value, overheadCeilingPct))
			}
			lines = append(lines, fmt.Sprintf("  %-55s %7.3f%% -> %7.3f%%  (ceiling %.1f%%)  %s", key, br.Value, rr.Value, overheadCeilingPct, status))
		}
	}
	for _, rr := range run.Records {
		if classifyMetric(rr.Section, rr.Metric) == gateSkip {
			continue
		}
		if _, ok := baseByKey[recordKey(rr)]; !ok {
			lines = append(lines, fmt.Sprintf("  %-55s new metric (not in baseline, not gated)", recordKey(rr)))
		}
	}
	return lines, failures
}

// mergeReports combines several independent msbench process runs into one
// report holding the per-metric median. Single process runs are bimodal on
// some metrics (heap and page placement decided at startup shifts a kernel's
// throughput by 30%+ for the whole process lifetime), so both the checked-in
// baseline and the CI run are medians of several fresh processes — that is
// what makes the regression gate's tolerance meaningful.
func mergeReports(reps []*Report) (*Report, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("no reports to merge")
	}
	vals := make(map[string][]float64)
	var order []string
	recs := make(map[string]Record)
	for _, rep := range reps {
		if rep.N != reps[0].N || rep.Seed != reps[0].Seed {
			return nil, fmt.Errorf("reports disagree on workload (n=%d/%d, seed=%d/%d)",
				rep.N, reps[0].N, rep.Seed, reps[0].Seed)
		}
		for _, r := range rep.Records {
			key := recordKey(r)
			if _, seen := vals[key]; !seen {
				order = append(order, key)
				recs[key] = r
			}
			vals[key] = append(vals[key], r.Value)
		}
	}
	out := *reps[0]
	out.Records = make([]Record, 0, len(order))
	for _, key := range order {
		vs := append([]float64(nil), vals[key]...)
		sort.Float64s(vs)
		med := vs[len(vs)/2]
		if len(vs)%2 == 0 {
			med = (vs[len(vs)/2-1] + vs[len(vs)/2]) / 2
		}
		r := recs[key]
		r.Value = med
		out.Records = append(out.Records, r)
	}
	return &out, nil
}
