package main

import (
	"fmt"
	"strings"
	"testing"
)

// syntheticReport builds a report with nMetrics throughput metrics at 10 GB/s
// plus one compression-rate metric.
func syntheticReport(nMetrics int, gbps float64) *Report {
	rep := &Report{N: 1 << 18, Seed: 42, Repeats: 3}
	for i := 0; i < nMetrics; i++ {
		rep.Records = append(rep.Records, Record{
			Section: "parallel", Name: fmt.Sprintf("kernel%d", i), Metric: "gbps", Value: gbps,
		})
	}
	rep.Records = append(rep.Records,
		Record{Section: "codec", Name: "c1/dyn_bp", Metric: "rate", Value: 0.25},
		Record{Section: "codec", Name: "c1/dyn_bp", Metric: "estimate_err_pct", Value: -3},
	)
	return rep
}

func cloneReport(r *Report) *Report {
	c := *r
	c.Records = append([]Record(nil), r.Records...)
	return &c
}

func TestCompareIdenticalRunPasses(t *testing.T) {
	base := syntheticReport(20, 10)
	if _, failures := compareReports(base, cloneReport(base), 0.25); len(failures) != 0 {
		t.Fatalf("identical run failed the gate: %v", failures)
	}
}

// TestCompareUniformSlowdownPasses models a uniformly slower CI runner: every
// throughput metric at half speed. The median normalization must absorb it.
func TestCompareUniformSlowdownPasses(t *testing.T) {
	base := syntheticReport(20, 10)
	run := cloneReport(base)
	for i := range run.Records {
		if classifyMetric(run.Records[i].Section, run.Records[i].Metric) == gateThroughput {
			run.Records[i].Value /= 2
		}
	}
	if _, failures := compareReports(base, run, 0.25); len(failures) != 0 {
		t.Fatalf("uniform machine slowdown failed the gate: %v", failures)
	}
}

// TestCompareInjectedSlowdownFails injects a 30% slowdown into a single
// kernel: the gate must flag exactly that metric.
func TestCompareInjectedSlowdownFails(t *testing.T) {
	base := syntheticReport(20, 10)
	run := cloneReport(base)
	run.Records[3].Value *= 0.70
	_, failures := compareReports(base, run, 0.25)
	if len(failures) != 1 {
		t.Fatalf("expected 1 failure, got %v", failures)
	}
	if !strings.Contains(failures[0], "parallel/kernel3/gbps") {
		t.Fatalf("wrong metric flagged: %v", failures[0])
	}
}

// TestCompareSmallJitterPasses keeps a 10% dip within the 25% tolerance.
func TestCompareSmallJitterPasses(t *testing.T) {
	base := syntheticReport(20, 10)
	run := cloneReport(base)
	run.Records[3].Value *= 0.90
	if _, failures := compareReports(base, run, 0.25); len(failures) != 0 {
		t.Fatalf("10%% jitter failed the gate: %v", failures)
	}
}

// TestCompareCompressNotGated checks that the noisy allocation-heavy
// compression timings are reported but never fail the gate.
func TestCompareCompressNotGated(t *testing.T) {
	base := syntheticReport(8, 10)
	base.Records = append(base.Records,
		Record{Section: "codec", Name: "c1/dyn_bp", Metric: "compress_gbps", Value: 5})
	run := cloneReport(base)
	run.Records[len(run.Records)-1].Value = 2 // 60% down: would fail if gated
	lines, failures := compareReports(base, run, 0.25)
	if len(failures) != 0 {
		t.Fatalf("compress_gbps must not be gated: %v", failures)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "compress_gbps") && strings.Contains(l, "info") {
			found = true
		}
	}
	if !found {
		t.Fatal("compress_gbps must still be reported informationally")
	}
}

// TestCompareRatioGate checks the serial_over_concat speedup gate: a noisy
// halving of the ratio passes (the concat denominator is a microsecond-scale
// timing), while a collapse towards 1x — per-block work back in the concat
// path — fails, and the standard tolerance plays no role in either verdict.
func TestCompareRatioGate(t *testing.T) {
	base := syntheticReport(8, 10)
	base.Records = append(base.Records,
		Record{Section: "stitch", Name: "select_pos/delta+bp", Metric: "serial_over_concat", Value: 200})

	noisy := cloneReport(base)
	noisy.Records[len(noisy.Records)-1].Value = 100 // 2x down: timing noise
	if _, failures := compareReports(base, noisy, 0.25); len(failures) != 0 {
		t.Fatalf("halved ratio must pass the loose ratio gate: %v", failures)
	}

	collapsed := cloneReport(base)
	collapsed.Records[len(collapsed.Records)-1].Value = 3 // serial work is back
	_, failures := compareReports(base, collapsed, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "serial_over_concat") {
		t.Fatalf("collapsed ratio not flagged: %v", failures)
	}
	if _, failures := compareReports(base, collapsed, 100); len(failures) != 1 {
		t.Fatalf("ratio gate must not depend on the throughput tolerance: %v", failures)
	}
}

func TestCompareRateRegressionFails(t *testing.T) {
	base := syntheticReport(8, 10)
	run := cloneReport(base)
	for i := range run.Records {
		if run.Records[i].Metric == "rate" {
			run.Records[i].Value = 0.40 // compresses much worse than 0.25
		}
	}
	_, failures := compareReports(base, run, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "rate") {
		t.Fatalf("rate regression not flagged: %v", failures)
	}
}

// TestMergeReportsMedian checks that merging takes the per-metric median and
// so discards the one-off fast/slow process sample.
func TestMergeReportsMedian(t *testing.T) {
	a := syntheticReport(2, 10)
	b := syntheticReport(2, 11)
	c := syntheticReport(2, 30) // outlier process
	merged, err := mergeReports([]*Report{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Records) != len(a.Records) {
		t.Fatalf("merged %d records, want %d", len(merged.Records), len(a.Records))
	}
	if got := merged.Records[0].Value; got != 11 {
		t.Fatalf("median = %v, want 11", got)
	}
	mismatched := syntheticReport(2, 10)
	mismatched.N = 999
	if _, err := mergeReports([]*Report{a, mismatched}); err == nil {
		t.Fatal("merging reports of different workloads must fail")
	}
}

// TestCompareWorkloadMismatchFails checks that the gate refuses to compare
// reports recorded on different workloads instead of producing spurious
// rate/throughput verdicts.
func TestCompareWorkloadMismatchFails(t *testing.T) {
	base := syntheticReport(8, 10)
	run := cloneReport(base)
	run.N *= 2
	_, failures := compareReports(base, run, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "workload mismatch") {
		t.Fatalf("workload mismatch not flagged: %v", failures)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := syntheticReport(8, 10)
	run := cloneReport(base)
	run.Records = run.Records[1:] // drop kernel0
	_, failures := compareReports(base, run, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("missing metric not flagged: %v", failures)
	}
}
