package morphstore_test

// This file keeps the documentation honest: the code snippets shown in
// README.md and docs/ARCHITECTURE.md exist here between doc-snippet
// markers, so they are compiled and executed by `go test .`, and
// TestDocSnippetsInSync fails when a marked line no longer appears in the
// corresponding document (drift in either direction breaks the build).

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"morphstore"
)

// TestREADMEAPISnippet compiles and runs the README "## API" example.
func TestREADMEAPISnippet(t *testing.T) {
	// doc-snippet:readme-api README.md
	ctx := context.Background()

	// One-off operators share the engine budget.
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	col, _ := morphstore.Compress(vals, morphstore.DynBP)
	eng := morphstore.NewEngine(nil, morphstore.WithStyle(morphstore.Vec512))
	pos, _ := eng.Select(ctx, col, morphstore.CmpGt, 3, morphstore.WithOutput(morphstore.DeltaBP))
	sum, _ := eng.Sum(ctx, col)

	// Prepared plans: formats resolved once (explicitly, uniformly, or
	// cost-based), every node bound to a physical operator.
	db := morphstore.NewDB()
	db.AddTable("t", map[string][]uint64{"x": vals})
	b := morphstore.NewPlanBuilder()
	x := b.Scan("t", "x")
	match := b.Select("match", x, morphstore.CmpGt, 3)
	b.Result(b.SumWhole("total", b.Project("matched", x, match)))
	plan, _ := b.Build()

	eng = morphstore.NewEngine(db,
		morphstore.WithParallelism(8),           // engine-wide worker budget
		morphstore.WithMaxConcurrentQueries(64)) // admission gate
	q, _ := eng.Prepare(plan, morphstore.WithCostBasedFormats())
	res, _ := q.Execute(ctx) // concurrent-safe, cancellable
	// end-doc-snippet

	if pos == nil || pos.N() != 4 {
		t.Fatalf("select positions = %v", pos)
	}
	if sum != 31 {
		t.Fatalf("sum = %d, want 31", sum)
	}
	if res == nil || res.Cols["total"] == nil {
		t.Fatal("prepared execution produced no result column")
	}
	if got, _ := morphstore.Decompress(res.Cols["total"]); got[0] != 24 {
		t.Fatalf("total = %d, want 24 (4+5+9+6)", got[0])
	}
}

// TestREADMEWriteSnippet compiles and runs the README "## Writable tables"
// example.
func TestREADMEWriteSnippet(t *testing.T) {
	ctx := context.Background()

	// doc-snippet:readme-write README.md
	wdb := morphstore.NewDB()
	wdb.AddTable("events", map[string][]uint64{"v": {10, 20, 30, 40}})
	weng := morphstore.NewEngine(wdb,
		morphstore.WithRemorph(0.1, time.Second)) // background delta folding
	werr := weng.Append(ctx, "events", map[string][]uint64{"v": {50, 60}})
	if werr == nil {
		werr = weng.Delete(ctx, "events", []uint64{0}) // by live row position
	}
	if werr == nil {
		werr = weng.Remorph(ctx, "events") // or fold the delta right now
	}
	epoch := weng.Snapshot().Epoch("events") // pinned, consistent read view
	// end-doc-snippet

	if werr != nil {
		t.Fatal(werr)
	}
	if epoch == 0 {
		t.Fatal("mutations did not advance the table epoch")
	}
	st := weng.Stats()
	if st.Appends != 1 || st.AppendedRows != 2 || st.Deletes != 1 || st.Remorphs != 1 {
		t.Fatalf("write counters not tracked: %+v", st)
	}
	if n, ok := weng.Snapshot().Rows("events"); !ok || n != 5 {
		t.Fatalf("live rows = %d,%v, want 5,true", n, ok)
	}
	if err := weng.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestREADMEIngestSnippet compiles and runs the README "String columns &
// ingest" example.
func TestREADMEIngestSnippet(t *testing.T) {
	ctx := context.Background()

	// doc-snippet:readme-ingest README.md
	csv := "nation,revenue\nFRANCE,10\nGERMANY,20\nFRANCE,30\n"
	idb := morphstore.NewDB()
	ieng := morphstore.NewEngine(idb, morphstore.WithParallelism(4))
	rows, ierr := morphstore.Ingest(ctx, ieng, "sales",
		morphstore.NewCSVSource(strings.NewReader(csv))) // sniffs types, builds the dict
	ib := morphstore.NewPlanBuilder()
	fr := ib.SelectStrEq("fr", ib.Scan("sales", "nation"), "FRANCE")
	ib.Result(ib.Project("rev", ib.Scan("sales", "revenue"), fr))
	iplan, _ := ib.Build()
	iq, _ := ieng.Prepare(iplan, morphstore.WithCostBasedFormats())
	ires, _ := iq.Execute(ctx)
	// end-doc-snippet

	if ierr != nil || rows != 3 {
		t.Fatalf("ingest = %d rows, %v; want 3, nil", rows, ierr)
	}
	if ires == nil || ires.Cols["rev"] == nil {
		t.Fatal("ingest query produced no result column")
	}
	got, err := morphstore.Decompress(ires.Cols["rev"])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("FRANCE revenues = %v, want [10 30]", got)
	}
	if ds := ieng.Snapshot().Dict("sales", "nation"); ds == nil || ds.Len() != 2 {
		t.Fatalf("dictionary snapshot = %v, want 2 entries", ds)
	}
	if err := ieng.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestArchitectureGroupingSnippet compiles and runs the grouped-aggregation
// example from docs/ARCHITECTURE.md.
func TestArchitectureGroupingSnippet(t *testing.T) {
	ctx := context.Background()
	eng := morphstore.NewEngine(nil)
	keys := morphstore.FromValues([]uint64{7, 7, 3, 7, 3, 5})
	vals := morphstore.FromValues([]uint64{1, 2, 3, 4, 5, 6})

	// doc-snippet:architecture-grouping docs/ARCHITECTURE.md
	gids, extents, _ := eng.GroupFirst(ctx, keys,
		morphstore.WithOutputs(morphstore.DynBP, morphstore.Uncompressed))
	sums, _ := eng.SumGrouped(ctx, gids, vals, extents.N())
	groupKeys, _ := eng.Project(ctx, keys, extents)
	// end-doc-snippet

	wantKeys := []uint64{7, 3, 5}
	wantSums := []uint64{7, 8, 6}
	gotKeys, _ := morphstore.Decompress(groupKeys)
	gotSums, _ := morphstore.Decompress(sums)
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] || gotSums[i] != wantSums[i] {
			t.Fatalf("group %d: key %d sum %d, want key %d sum %d",
				i, gotKeys[i], gotSums[i], wantKeys[i], wantSums[i])
		}
	}
}

// TestArchitectureRetrySnippet compiles and runs the WithRetry example from
// the "Overload protection & lifecycle" section of docs/ARCHITECTURE.md.
func TestArchitectureRetrySnippet(t *testing.T) {
	ctx := context.Background()
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	db := morphstore.NewDB()
	db.AddTable("t", map[string][]uint64{"x": vals})
	b := morphstore.NewPlanBuilder()
	x := b.Scan("t", "x")
	match := b.Select("match", x, morphstore.CmpGt, 3)
	b.Result(b.SumWhole("total", b.Project("matched", x, match)))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := morphstore.NewEngine(db, morphstore.WithParallelism(2))

	// doc-snippet:architecture-retry docs/ARCHITECTURE.md
	q, _ := eng.Prepare(plan, morphstore.WithCostBasedFormats())
	res, err := q.Execute(ctx, morphstore.WithRetry(morphstore.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Jitter:      0.5, // add up to 50% of the delay, avoiding retry herds
	}))
	// end-doc-snippet

	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Cols["total"] == nil {
		t.Fatal("retried execution produced no result column")
	}
	if err := eng.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestObservabilitySnippet compiles and runs the stats-collection example
// from docs/OBSERVABILITY.md.
func TestObservabilitySnippet(t *testing.T) {
	ctx := context.Background()
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	db := morphstore.NewDB()
	db.AddTable("t", map[string][]uint64{"x": vals})
	b := morphstore.NewPlanBuilder()
	x := b.Scan("t", "x")
	match := b.Select("match", x, morphstore.CmpGt, 3)
	b.Result(b.SumWhole("total", b.Project("matched", x, match)))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := morphstore.NewEngine(db, morphstore.WithParallelism(2))
	q, err := eng.Prepare(plan, morphstore.WithUniformFormat(morphstore.DynBP))
	if err != nil {
		t.Fatal(err)
	}

	// doc-snippet:observability-stats docs/OBSERVABILITY.md
	var qs morphstore.QueryStats
	res, _ := q.Execute(ctx, morphstore.WithExecStats(&qs))
	for _, n := range qs.Nodes {
		fmt.Printf("%-8s %-12s %6d morsels %12v kernel  %v\n",
			n.Op, n.Name, n.Morsels, n.Kernel, n.Formats)
	}
	// end-doc-snippet

	if res == nil || res.Cols["total"] == nil {
		t.Fatal("collected execution produced no result column")
	}
	if qs.Failed || len(qs.Nodes) != 4 {
		t.Fatalf("stats tree not populated: %+v", qs)
	}
	for i, n := range qs.Nodes {
		if !n.Done {
			t.Fatalf("node %d not Done after success: %+v", i, n)
		}
	}
	if st := eng.Stats(); st.QueriesSucceeded != 1 {
		t.Fatalf("engine counters = %+v, want one success", st)
	}
}

// TestDocSnippetsInSync re-reads this file, collects every marked snippet,
// and verifies it against the document named by its marker in both
// directions: every snippet line must appear in one of the document's
// fenced Go blocks, and the matched block must contain no line that is
// missing from the compiled snippet — so editing either side without the
// other fails.
func TestDocSnippetsInSync(t *testing.T) {
	src, err := os.ReadFile("examples_doc_test.go")
	if err != nil {
		t.Fatal(err)
	}
	type snippet struct {
		doc   string
		lines []string
	}
	var snippets []snippet
	var cur *snippet
	sc := bufio.NewScanner(strings.NewReader(string(src)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "// doc-snippet:"):
			fields := strings.Fields(strings.TrimPrefix(line, "// doc-snippet:"))
			if len(fields) != 2 {
				t.Fatalf("malformed snippet marker %q", line)
			}
			snippets = append(snippets, snippet{doc: fields[1]})
			cur = &snippets[len(snippets)-1]
		case line == "// end-doc-snippet":
			cur = nil
		case cur != nil && line != "":
			cur.lines = append(cur.lines, line)
		}
	}
	if len(snippets) == 0 {
		t.Fatal("no doc snippets found — markers broken?")
	}
	docBlocks := map[string][][]string{}
	for _, sn := range snippets {
		if docBlocks[sn.doc] == nil {
			raw, err := os.ReadFile(sn.doc)
			if err != nil {
				t.Fatalf("snippet document: %v", err)
			}
			docBlocks[sn.doc] = goFences(string(raw))
		}
		if len(sn.lines) == 0 {
			t.Fatal("empty doc snippet")
		}
		// The document block covering this snippet is the one holding its
		// first line.
		var block []string
		for _, bl := range docBlocks[sn.doc] {
			for _, l := range bl {
				if l == sn.lines[0] {
					block = bl
					break
				}
			}
			if block != nil {
				break
			}
		}
		if block == nil {
			t.Errorf("%s: no fenced Go block contains the snippet starting %q", sn.doc, sn.lines[0])
			continue
		}
		snSet := map[string]bool{}
		for _, l := range sn.lines {
			snSet[l] = true
		}
		blSet := map[string]bool{}
		for _, l := range block {
			blSet[l] = true
		}
		for _, l := range sn.lines {
			if !blSet[l] {
				t.Errorf("%s: compiled snippet line missing from the document block (doc drifted):\n  %s", sn.doc, l)
			}
		}
		for _, l := range block {
			if !snSet[l] {
				t.Errorf("%s: document line is not part of the compiled snippet (doc shows unverified code):\n  %s", sn.doc, l)
			}
		}
	}
}

// goFences extracts the ```go fenced code blocks of a markdown document as
// per-block lists of trimmed, non-blank lines.
func goFences(doc string) [][]string {
	var blocks [][]string
	var cur []string
	in := false
	for _, l := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(l)
		switch {
		case !in && trimmed == "```go":
			in, cur = true, nil
		case in && trimmed == "```":
			in = false
			blocks = append(blocks, cur)
		case in && trimmed != "":
			cur = append(cur, trimmed)
		}
	}
	return blocks
}
