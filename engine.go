// Engine API: the primary way to execute queries and operators.
//
// An Engine owns a database, an engine-wide worker budget, and an admission
// gate. Plans are compiled once with Prepare — per-column formats resolved
// explicitly, uniformly, or cost-based; morph insertions and
// specialized-kernel dispatch bound per node — and executed any number of
// times, from any number of goroutines, under a context.Context:
//
//	eng := morphstore.NewEngine(db,
//		morphstore.WithStyle(morphstore.Vec512),
//		morphstore.WithParallelism(8),
//		morphstore.WithMaxConcurrentQueries(64))
//	q, err := eng.Prepare(plan, morphstore.WithCostBasedFormats())
//	res, err := q.Execute(ctx)
//
// Concurrent Execute calls share the engine's worker budget: the allowance
// is re-divided deterministically whenever an operator of any running query
// starts or finishes, results are byte-identical to a sequential run at
// every parallelism level, and a cancelled context stops the DAG scheduler
// and the running morsel loops within one morsel.
//
// The engine also offers every operator as a one-off call under the same
// budget, replacing the positional (out, style, par) parameter tails with
// functional options:
//
//	pos, err := eng.Select(ctx, col, morphstore.CmpGt, 3,
//		morphstore.WithOutput(morphstore.DeltaBP))
//
// The free functions of the original facade (Select, Project, Execute, …)
// remain as deprecated thin wrappers over the same kernels.
package morphstore

import (
	"time"

	"morphstore/internal/core"
)

// Engine owns a database, an engine-wide worker budget shared
// deterministically by every concurrently executing query and one-off
// operator call, a bounded admission queue, and an optional runtime memory
// governor. It is safe for concurrent use, and shuts down gracefully with
// Close: admission stops (later calls match ErrEngineClosed), in-flight
// work drains, and stragglers are cancelled at the context's deadline. See
// core.Engine for the full method set: Prepare, Close, Stats, plus the
// one-off operators Select, SelectBetween, Project, Sum, SumGrouped,
// SemiJoin, JoinN1, Calc, Intersect, Union, GroupFirst, and GroupNext, all
// taking a context and options.
type Engine = core.Engine

// Prepared is a plan compiled against one engine: formats resolved, every
// node bound to a physical operator. It is immutable and safe for
// concurrent Execute(ctx) calls from many goroutines.
type Prepared = core.Prepared

// Snapshot is a consistent read view over the engine's tables, returned by
// Engine.Snapshot: each writable table pinned at one delta epoch, immune to
// later Append/Delete calls and remorph swaps. Every Execute pins its own
// snapshot at admission, so all operators of one query read the same view.
type Snapshot = core.Snapshot

// Option is a functional option for NewEngine, Engine.Prepare,
// Prepared.Execute, and the engine's one-off operator calls.
type Option = core.Option

// NewEngine returns an engine over db (nil means an empty database, for
// one-off operator use). Options set engine-wide defaults (WithStyle,
// WithSpecialized, WithAutoMorph), the worker budget (WithParallelism:
// 0 = GOMAXPROCS), the admission layer (WithMaxConcurrentQueries,
// WithAdmissionQueue), the runtime memory governor (WithMemoryBudget), and
// the retry policy (WithRetry).
func NewEngine(db *DB, opts ...Option) *Engine { return core.NewEngine(db, opts...) }

// WithStyle selects the processing-style specialization of all kernels.
// Applies to NewEngine (default), Prepare, and one-off operator calls.
func WithStyle(s Style) Option { return core.WithStyle(s) }

// WithSpecialized enables the specialized-operator integration degree for
// formats that have one (§3.3). Applies to NewEngine, Prepare, and one-off
// operator calls.
func WithSpecialized(on bool) Option { return core.WithSpecialized(on) }

// WithAutoMorph permits on-the-fly morphs when an operator needs random
// access to a column whose format does not support it; without it such
// plans fail to prepare. Applies to NewEngine and Prepare.
func WithAutoMorph(on bool) Option { return core.WithAutoMorph(on) }

// WithKeep retains all intermediate columns in the result. Applies to
// Prepare and Execute.
func WithKeep(on bool) Option { return core.WithKeep(on) }

// WithParallelism sets the worker-goroutine budget: at NewEngine the
// engine-wide budget shared by all concurrent queries, at Prepare/Execute
// and one-off operator calls the cap of that one query or operator. 0 means
// the engine budget (GOMAXPROCS for a fresh engine); 1 reproduces the
// sequential operator-at-a-time execution exactly. Results are
// byte-identical at every level.
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithMaxConcurrentQueries bounds how many Execute calls run at once; the
// surplus parks in the engine's admission queue (honouring ctx and the
// WithAdmissionQueue bounds) and is admitted FIFO. 0 means unlimited.
// Applies to NewEngine.
func WithMaxConcurrentQueries(n int) Option { return core.WithMaxConcurrentQueries(n) }

// WithAdmissionQueue bounds the engine's admission queue behind
// WithMaxConcurrentQueries: at most depth queries park at once and none
// parks longer than maxWait. A query arriving at a full queue, or parked
// past maxWait or its own context's expiry, is shed with an error matching
// ErrAdmissionRejected (retryable — it never started). depth 0 means an
// unbounded queue, maxWait 0 no wait bound. Applies to NewEngine.
func WithAdmissionQueue(depth int, maxWait time.Duration) Option {
	return core.WithAdmissionQueue(depth, maxWait)
}

// WithMemoryBudget gives the engine a runtime memory governor: an
// engine-wide byte budget for the intermediates of all concurrently
// executing queries. Each execution reserves its plan's estimate
// (Prepared.MemoryEstimate) at admission; queries that do not fit wait,
// shed with ErrAdmissionRejected when their wait expires, or fail with
// ErrMemoryLimit when the estimate exceeds the whole budget (degrading to
// sequential execution instead under WithMemoryLimitDegrade). Actual peak
// usage is reported in QueryStats.MemPeak and Engine.Stats. 0 means no
// governor. Applies to NewEngine.
func WithMemoryBudget(bytes int64) Option { return core.WithMemoryBudget(bytes) }

// RetryPolicy configures WithRetry: the attempt bound and the jittered
// exponential backoff between attempts. The zero policy disables retries.
type RetryPolicy = core.RetryPolicy

// WithRetry retries an execution whose failure IsRetryable reports
// retryable (admission sheds, transient faults — never mid-flight
// cancellations, corrupt data, or a closed engine), up to the policy's
// MaxAttempts, sleeping its jittered exponential backoff between attempts.
// The caller's context covers all attempts; WithQueryTimeout applies per
// attempt. Applies to NewEngine, Prepare, and Execute.
func WithRetry(p RetryPolicy) Option { return core.WithRetry(p) }

// WithRemorph starts the engine's background remorph worker: every interval
// it scans the tables written through Engine.Append/Delete and rebuilds any
// whose delta (tail rows plus pending deletions) has reached threshold times
// the main row count (threshold <= 0 folds any non-empty delta). A rebuild
// rescans main plus delta off the hot path, re-picks each column's
// compression format with the cost model, and atomically swaps the new main
// in; running queries finish on their pinned snapshots. Engine.Close stops
// the worker and drains an in-flight rebuild. Without this option the delta
// only folds on explicit Engine.Remorph calls. Applies to NewEngine.
func WithRemorph(threshold float64, interval time.Duration) Option {
	return core.WithRemorph(threshold, interval)
}

// WithFormat assigns a compression format to one named plan column,
// overriding WithUniformFormat/WithCostBasedFormats choices. Applies to
// Prepare.
func WithFormat(column string, d FormatDesc) Option { return core.WithFormat(column, d) }

// WithFormats assigns compression formats to the named plan columns
// (missing entries stay uncompressed). Applies to Prepare.
func WithFormats(m map[string]FormatDesc) Option { return core.WithFormats(m) }

// WithUniformFormat assigns one format to every intermediate of the plan
// (randomly accessed columns fall back to static BP). Applies to Prepare.
func WithUniformFormat(d FormatDesc) Option { return core.WithUniformFormat(d) }

// WithCostBasedFormats selects every intermediate's format with the
// gray-box cost model (footprint objective, §5) at prepare time. Applies to
// Prepare.
func WithCostBasedFormats() Option { return core.WithCostBasedFormats() }

// WithConfig adopts a legacy Config (formats, style, specialized,
// AutoMorph, Keep). Applies to Prepare; it is the migration bridge from the
// deprecated Execute.
func WithConfig(cfg *Config) Option { return core.WithConfig(cfg) }

// WithOutput sets the output format of a one-off operator call (every
// output of dual-output operators). Defaults to Uncompressed. Applies to
// operator calls.
func WithOutput(d FormatDesc) Option { return core.WithOutput(d) }

// WithOutputs sets the two output formats of a dual-output operator call
// (JoinN1: probe positions, build positions; GroupFirst/GroupNext: group
// ids, extents). Applies to operator calls.
func WithOutputs(first, second FormatDesc) Option { return core.WithOutputs(first, second) }
