// Package morphstore is a from-scratch Go implementation of MorphStore, the
// in-memory columnar analytical query engine with a holistic
// compression-enabled processing model (Damme et al., "MorphStore:
// Analytical Query Engine with a Holistic Compression-Enabled Processing
// Model", arXiv:2004.09350, 2020).
//
// The engine executes operator-at-a-time query plans over columns of
// unsigned 64-bit integers. Its distinguishing property is that every base
// column and every materialized intermediate result can carry its own
// lightweight integer compression format — static bit packing, block-wise
// binary packing (SIMD-BP512), DELTA and FOR cascades, or RLE — chosen
// independently per column, with operators integrating compression at four
// degrees: purely uncompressed processing, on-the-fly de/re-compression,
// specialized operators working directly on compressed data, and on-the-fly
// morphing between formats.
//
// This package is the public facade over the implementation packages:
//
//	internal/columns   column storage (compressed main part + remainder)
//	internal/formats   the compression format corpus
//	internal/morph     format morphing
//	internal/ops       physical query operators
//	internal/core      plans, format configurations, execution, search
//	internal/delta     writable-table delta stores, snapshots, remorph
//	internal/stats     data-characteristics collection
//	internal/costmodel gray-box cost model for format selection
//	internal/ssb       Star Schema Benchmark substrate
//
// # Quick start
//
//	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
//	col, _ := morphstore.Compress(vals, morphstore.DynBP)
//	eng := morphstore.NewEngine(nil, morphstore.WithStyle(morphstore.Vec512))
//	pos, _ := eng.Select(ctx, col, morphstore.CmpGt, 3,
//		morphstore.WithOutput(morphstore.DeltaBP))
//
// Query plans compile once and execute concurrently under a context:
//
//	eng := morphstore.NewEngine(db, morphstore.WithParallelism(8))
//	q, _ := eng.Prepare(plan, morphstore.WithCostBasedFormats())
//	res, _ := q.Execute(ctx)
//
// See engine.go for the engine API and examples/ for complete programs.
package morphstore

import (
	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/costmodel"
	"morphstore/internal/formats"
	"morphstore/internal/morph"
	"morphstore/internal/ops"
	"morphstore/internal/ssb"
	"morphstore/internal/stats"
	"morphstore/internal/vector"
)

// Column is a sequence of unsigned 64-bit integers materialized in exactly
// one (possibly compressed) format.
type Column = columns.Column

// FormatDesc describes a column's compression format.
type FormatDesc = columns.FormatDesc

// The supported compression formats. StaticBPWidth(b) requests static bit
// packing with an explicit width; StaticBP derives the width from the data.
var (
	// Uncompressed stores one 64-bit word per element.
	Uncompressed = columns.UncomprDesc
	// StaticBP is bit packing with one derived fixed width per column; the
	// only compressed format with random read access.
	StaticBP = columns.StaticBPDesc(0)
	// DynBP is block-wise binary packing over 512-element blocks (the
	// 64-bit SIMD-BP512 analog).
	DynBP = columns.DynBPDesc
	// DeltaBP cascades delta coding with DynBP; it excels on sorted data
	// such as the position lists produced by selections.
	DeltaBP = columns.DeltaBPDesc
	// ForBP cascades frame-of-reference coding with DynBP; it excels on
	// narrow ranges of large values.
	ForBP = columns.ForBPDesc
	// RLE is run-length encoding.
	RLE = columns.RLEDesc
)

// StaticBPWidth requests static bit packing with an explicit width.
func StaticBPWidth(bits uint) FormatDesc { return columns.StaticBPDesc(bits) }

// Formats returns the paper's five formats; AllFormats additionally
// includes the RLE extension.
func Formats() []FormatDesc { return formats.PaperDescs() }

// AllFormats returns every supported format.
func AllFormats() []FormatDesc { return formats.AllDescs() }

// FromValues wraps vals as an uncompressed column without copying.
func FromValues(vals []uint64) *Column { return columns.FromValues(vals) }

// Compress materializes vals as a new column in the requested format.
func Compress(vals []uint64, desc FormatDesc) (*Column, error) {
	return formats.Compress(vals, desc)
}

// Decompress expands a column into a fresh value slice.
func Decompress(col *Column) ([]uint64, error) { return formats.Decompress(col) }

// ConcatCompressed concatenates columns of one format into a single column
// holding their element streams back to back, byte-identical to compressing
// the concatenated streams monolithically — but built from block-granular
// copies of the parts' compressed blocks, with only per-seam fixups (DeltaBP
// first-block rebase, RLE adjacent-run merge, bit-stream shifts for
// misaligned static BP seams). It is the splice primitive behind the
// parallel operators' compressed stitch, exported for partition-at-rest use
// cases (assembling shard results without a decompression round trip).
func ConcatCompressed(desc FormatDesc, parts []*Column) (*Column, error) {
	return formats.ConcatCompressed(desc, parts)
}

// Morph re-represents a column in another format without materializing it
// uncompressed in main memory (direct morphing where available, block-wise
// streaming otherwise).
func Morph(col *Column, desc FormatDesc) (*Column, error) { return morph.Morph(col, desc) }

// Style selects the processing-style specialization of operator kernels.
type Style = vector.Style

// Processing styles: scalar or 8-lane 512-bit vector processing.
const (
	Scalar = vector.Scalar
	Vec512 = vector.Vec512
)

// CmpKind is a comparison operator for selections.
type CmpKind = bitutil.CmpKind

// Comparison operators.
const (
	CmpEq = bitutil.CmpEq
	CmpNe = bitutil.CmpNe
	CmpLt = bitutil.CmpLt
	CmpLe = bitutil.CmpLe
	CmpGt = bitutil.CmpGt
	CmpGe = bitutil.CmpGe
)

// CalcKind is an element-wise arithmetic operator.
type CalcKind = ops.CalcKind

// Arithmetic operators.
const (
	CalcAdd = ops.CalcAdd
	CalcSub = ops.CalcSub
	CalcMul = ops.CalcMul
)

// Select returns the sorted positions of elements matching `element op val`,
// recompressed in the requested output format.
//
// Deprecated: Use Engine.Select(ctx, in, op, val, WithOutput(out), WithStyle(style)).
func Select(in *Column, op CmpKind, val uint64, out FormatDesc, style Style) (*Column, error) {
	return ops.Select(in, op, val, out, style)
}

// SelectBetween returns the sorted positions of elements in [lo, hi].
//
// Deprecated: Use Engine.SelectBetween(ctx, in, lo, hi, WithOutput(out), WithStyle(style)).
func SelectBetween(in *Column, lo, hi uint64, out FormatDesc, style Style) (*Column, error) {
	return ops.SelectBetween(in, lo, hi, out, style)
}

// Project gathers data values at the given positions; the data column must
// support random access (Uncompressed or StaticBP).
//
// Deprecated: Use Engine.Project(ctx, data, pos, WithOutput(out), WithStyle(style)).
func Project(data, pos *Column, out FormatDesc, style Style) (*Column, error) {
	return ops.Project(data, pos, out, style)
}

// Sum aggregates all elements of a column.
//
// Deprecated: Use Engine.Sum(ctx, in, WithStyle(style)).
func Sum(in *Column, style Style) (uint64, error) {
	s, _, err := ops.SumWhole(in, style)
	return s, err
}

// ParSelect is the morsel-parallel form of Select: the input is split into
// at most par contiguous block-aligned partitions processed on worker
// goroutines. The result is byte-identical to Select at every par.
//
// Deprecated: Use Engine.Select with WithParallelism(par).
func ParSelect(in *Column, op CmpKind, val uint64, out FormatDesc, style Style, par int) (*Column, error) {
	return ops.ParSelect(in, op, val, out, style, par)
}

// ParSelectBetween is the morsel-parallel form of SelectBetween.
//
// Deprecated: Use Engine.SelectBetween with WithParallelism(par).
func ParSelectBetween(in *Column, lo, hi uint64, out FormatDesc, style Style, par int) (*Column, error) {
	return ops.ParSelectBetween(in, lo, hi, out, style, par)
}

// ParProject is the morsel-parallel form of Project.
//
// Deprecated: Use Engine.Project with WithParallelism(par).
func ParProject(data, pos *Column, out FormatDesc, style Style, par int) (*Column, error) {
	return ops.ParProject(data, pos, out, style, par)
}

// ParSemiJoin emits probe positions whose key occurs in build, probing the
// shared build-side hash table from par workers.
//
// Deprecated: Use Engine.SemiJoin with WithParallelism(par).
func ParSemiJoin(probe, build *Column, out FormatDesc, style Style, par int) (*Column, error) {
	return ops.ParSemiJoin(probe, build, out, style, par)
}

// ParSum is the morsel-parallel form of Sum.
//
// Deprecated: Use Engine.Sum with WithParallelism(par).
func ParSum(in *Column, style Style, par int) (uint64, error) {
	s, _, err := ops.ParSum(in, style, par)
	return s, err
}

// JoinN1 equi-joins a probe-side key column against a build-side key column
// with unique values, returning the matching probe positions and, aligned
// with them, the joined build positions.
//
// Deprecated: Use Engine.JoinN1(ctx, probe, build, WithOutputs(outProbe, outBuild), WithStyle(style)).
func JoinN1(probe, build *Column, outProbe, outBuild FormatDesc, style Style) (probePos, buildPos *Column, err error) {
	return ops.JoinN1(probe, build, outProbe, outBuild, style)
}

// ParJoinN1 is the morsel-parallel form of JoinN1: the build-side hash table
// is built once and probed from par workers; both position outputs are
// byte-identical to JoinN1 at every par.
//
// Deprecated: Use Engine.JoinN1 with WithParallelism(par).
func ParJoinN1(probe, build *Column, outProbe, outBuild FormatDesc, style Style, par int) (probePos, buildPos *Column, err error) {
	return ops.ParJoinN1(probe, build, outProbe, outBuild, style, par)
}

// SumGrouped sums vals per group id, for group ids in [0, nGroups).
//
// Deprecated: Use Engine.SumGrouped(ctx, gids, vals, nGroups, WithStyle(style)).
func SumGrouped(gids, vals *Column, nGroups int, style Style) (*Column, error) {
	return ops.SumGrouped(gids, vals, nGroups, style)
}

// ParSumGrouped is the morsel-parallel form of SumGrouped: workers merge
// per-partition partial group-sum arrays.
//
// Deprecated: Use Engine.SumGrouped with WithParallelism(par).
func ParSumGrouped(gids, vals *Column, nGroups int, style Style, par int) (*Column, error) {
	return ops.ParSumGrouped(gids, vals, nGroups, style, par)
}

// Intersect intersects two sorted position lists.
//
// Deprecated: Use Engine.Intersect(ctx, a, b, WithOutput(out)).
func Intersect(a, b *Column, out FormatDesc) (*Column, error) {
	return ops.IntersectSorted(a, b, out)
}

// ParIntersect is the value-range-parallel form of Intersect: both sorted
// inputs are split at shared value boundaries and the per-range
// intersections are concatenated in range order, byte-identical to
// Intersect at every par.
//
// Deprecated: Use Engine.Intersect with WithParallelism(par).
func ParIntersect(a, b *Column, out FormatDesc, par int) (*Column, error) {
	return ops.ParIntersect(a, b, out, par)
}

// Union merges two sorted position lists without duplicates.
//
// Deprecated: Use Engine.Union(ctx, a, b, WithOutput(out)).
func Union(a, b *Column, out FormatDesc) (*Column, error) {
	return ops.MergeSorted(a, b, out)
}

// ParUnion is the value-range-parallel form of Union.
//
// Deprecated: Use Engine.Union with WithParallelism(par).
func ParUnion(a, b *Column, out FormatDesc, par int) (*Column, error) {
	return ops.ParMerge(a, b, out, par)
}

// GroupFirst assigns a dense group id (in order of first occurrence) to
// every element of keys. It returns the per-row group ids and, per group,
// the position of its first occurrence (the extents column; projecting the
// key column with it yields the per-group key values).
//
// Deprecated: Use Engine.GroupFirst(ctx, keys, WithOutputs(outGids, outExtents), WithStyle(style)).
func GroupFirst(keys *Column, outGids, outExtents FormatDesc, style Style) (gids, extents *Column, err error) {
	return ops.GroupFirst(keys, outGids, outExtents, style)
}

// ParGroupFirst is the morsel-parallel form of GroupFirst: per-worker hash
// group tables merged deterministically into canonical first-occurrence
// group ids, byte-identical to GroupFirst at every par.
//
// Deprecated: Use Engine.GroupFirst with WithParallelism(par).
func ParGroupFirst(keys *Column, outGids, outExtents FormatDesc, style Style, par int) (gids, extents *Column, err error) {
	return ops.ParGroupFirst(keys, outGids, outExtents, style, par)
}

// GroupNext refines an existing grouping with an additional key column: rows
// fall into the same output group iff they had the same previous group id
// and the same new key (iterative multi-column grouping). Outputs follow the
// GroupFirst conventions.
//
// Deprecated: Use Engine.GroupNext(ctx, prevGids, keys, WithOutputs(outGids, outExtents), WithStyle(style)).
func GroupNext(prevGids, keys *Column, outGids, outExtents FormatDesc, style Style) (gids, extents *Column, err error) {
	return ops.GroupNext(prevGids, keys, outGids, outExtents, style)
}

// ParGroupNext is the morsel-parallel form of GroupNext.
//
// Deprecated: Use Engine.GroupNext with WithParallelism(par).
func ParGroupNext(prevGids, keys *Column, outGids, outExtents FormatDesc, style Style, par int) (gids, extents *Column, err error) {
	return ops.ParGroupNext(prevGids, keys, outGids, outExtents, style, par)
}

// Calc combines two equal-length columns element-wise.
//
// Deprecated: Use Engine.Calc(ctx, op, a, b, WithOutput(out), WithStyle(style)).
func Calc(op CalcKind, a, b *Column, out FormatDesc, style Style) (*Column, error) {
	return ops.CalcBinary(op, a, b, out, style)
}

// ParCalc is the morsel-parallel form of Calc: both inputs are split at
// shared block-aligned boundaries and combined in lockstep by par workers.
//
// Deprecated: Use Engine.Calc with WithParallelism(par).
func ParCalc(op CalcKind, a, b *Column, out FormatDesc, style Style, par int) (*Column, error) {
	return ops.ParCalcBinary(op, a, b, out, style, par)
}

// Profile holds the data characteristics driving format selection.
type Profile = stats.Profile

// Analyze collects the data characteristics of a value sequence.
func Analyze(vals []uint64) *Profile { return stats.Collect(vals) }

// EstimateBytes estimates the physical size of data with the given profile
// in the given format, using the gray-box cost model.
func EstimateBytes(p *Profile, desc FormatDesc) (int, error) {
	return costmodel.EstimateBytes(p, desc)
}

// SuggestFormat returns the format with the smallest estimated size among
// the candidates (the cost-based selection strategy of the paper's §5).
func SuggestFormat(p *Profile, candidates []FormatDesc) (FormatDesc, error) {
	return costmodel.ChooseBySize(p, candidates)
}

// Plan is an executable operator-at-a-time query plan.
type Plan = core.Plan

// PlanBuilder assembles plans; see core.Builder for the operator vocabulary.
type PlanBuilder = core.Builder

// ColRef names one intermediate column of a plan under construction.
type ColRef = core.ColRef

// NewPlanBuilder returns an empty plan builder.
func NewPlanBuilder() *PlanBuilder { return core.NewBuilder() }

// DB is a database of base tables.
type DB = core.DB

// NewDB returns an empty database.
func NewDB() *DB { return core.NewDB() }

// Config assigns formats to a plan's intermediates and selects the
// processing style and the parallelism degree (Config.Parallelism: 0 =
// GOMAXPROCS, 1 = sequential; results are byte-identical at every level).
type Config = core.Config

// Result is a plan execution outcome with footprint/runtime accounting.
type Result = core.Result

// Execute runs a plan against a database under the given configuration.
//
// Deprecated: Use NewEngine(db), Engine.Prepare(p, WithConfig(cfg)), and Prepared.Execute(ctx): the plan compiles once, executions accept a context, and concurrent queries share one worker budget.
func Execute(p *Plan, db *DB, cfg *Config) (*Result, error) {
	return core.Execute(p, db, cfg)
}

// UncompressedConfig processes everything uncompressed.
func UncompressedConfig(style Style) *Config { return core.UncompressedConfig(style) }

// UniformConfig assigns one format to every intermediate of the plan.
func UniformConfig(p *Plan, desc FormatDesc, style Style) *Config {
	return core.UniformConfig(p, desc, style)
}

// Assignment is a complete format combination (base columns and
// intermediates) for one plan.
type Assignment = core.Assignment

// CostBasedAssignment picks a format for every column of the plan with the
// gray-box cost model (footprint objective).
func CostBasedAssignment(p *Plan, db *DB) (*Assignment, error) {
	return core.CostBasedAssignment(p, db)
}

// FootprintSearch exhaustively determines the best and worst format
// combinations with respect to the memory footprint.
func FootprintSearch(p *Plan, db *DB) (best, worst *Assignment, err error) {
	return core.FootprintSearch(p, db)
}

// SSBData is a generated Star Schema Benchmark instance.
type SSBData = ssb.Data

// SSBQuery identifies one of the 13 SSB queries ("1.1" ... "4.3").
type SSBQuery = ssb.Query

// SSBQueries lists the 13 SSB queries in benchmark order.
var SSBQueries = ssb.Queries

// GenerateSSB deterministically generates a dictionary-encoded SSB instance
// at the given scale factor (SF 1 = 6 M lineorder rows).
func GenerateSSB(sf float64, seed int64) (*SSBData, error) { return ssb.Generate(sf, seed) }

// BuildSSBPlan constructs the operator-at-a-time plan of an SSB query.
func BuildSSBPlan(q SSBQuery, d *SSBData) (*Plan, error) { return ssb.BuildPlan(q, d.Dicts) }

// SSBRow is one canonicalized SSB result row.
type SSBRow = ssb.Row

// SSBReference computes an SSB query's ground-truth result row-wise.
func SSBReference(q SSBQuery, d *SSBData) ([]SSBRow, error) { return ssb.Reference(q, d) }

// ExtractSSBResult canonicalizes an engine result for comparison.
func ExtractSSBResult(q SSBQuery, res *Result) ([]SSBRow, error) {
	return ssb.ExtractResult(q, res)
}
