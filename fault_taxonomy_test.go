package morphstore

import (
	"context"
	"errors"
	"testing"

	"morphstore/internal/columns"
)

// The corruption acceptance test: structurally invalid compressed columns —
// whatever operator touches them, sequential or parallel, directly or inside
// an engine execution — must surface an error matching ErrCorruptData, never
// a panic or a silent wrong answer.

// corruptVariants builds one corrupted column per corruption class, each
// derived from a valid compressed column of ~4.5 blocks.
func corruptVariants(t *testing.T) map[string]*Column {
	t.Helper()
	vals := make([]uint64, 4*512+300)
	for i := range vals {
		vals[i] = uint64(i / 3) // gently increasing: every codec accepts it
	}
	rebuild := func(desc FormatDesc, n, mainElems, mainWords int, words []uint64) *Column {
		t.Helper()
		col, err := columns.New(desc, n, mainElems, mainWords, words)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	out := make(map[string]*Column)

	// A truncated main part: the block data ends before the elements do.
	dyn, err := Compress(vals, DynBP)
	if err != nil {
		t.Fatal(err)
	}
	short := append(append([]uint64{}, dyn.MainWords()[:len(dyn.MainWords())-2]...), dyn.Remainder()...)
	out["truncated block"] = rebuild(dyn.Desc(), dyn.N(), dyn.MainElems(), len(dyn.MainWords())-2, short)

	// An out-of-range static bit width (70 > 64).
	stat, err := Compress(vals, StaticBPWidth(12))
	if err != nil {
		t.Fatal(err)
	}
	out["oversized staticbp width"] = rebuild(StaticBPWidth(70), stat.N(), stat.MainElems(),
		len(stat.MainWords()), append([]uint64{}, stat.Words()...))

	// An RLE run length that overflows the column.
	rle, err := Compress(vals, RLE)
	if err != nil {
		t.Fatal(err)
	}
	overflow := append([]uint64{}, rle.Words()...)
	overflow[1] = 1 << 62
	out["overflowing rle run"] = rebuild(rle.Desc(), rle.N(), rle.MainElems(), len(rle.MainWords()), overflow)

	// An odd RLE word count: the trailing run lost its length word.
	odd := append([]uint64{}, rle.Words()[:len(rle.Words())-1]...)
	out["odd rle words"] = rebuild(rle.Desc(), rle.N(), rle.MainElems(), len(rle.MainWords())-1, odd)
	return out
}

func TestCorruptColumnsMatchSentinel(t *testing.T) {
	// Valid companions for the binary operators.
	n := 4*512 + 300
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i / 3)
	}
	valid := FromValues(vals)
	// Positions covering every element: the sorted-set operators must then
	// consume a corrupt operand to its end instead of early-exiting before
	// they reach the damage.
	pos, err := Select(valid, CmpLt, ^uint64(0), Uncompressed, Scalar)
	if err != nil {
		t.Fatal(err)
	}

	ops := []struct {
		name string
		run  func(c *Column) error
	}{
		{"decompress", func(c *Column) error { _, err := Decompress(c); return err }},
		{"concat", func(c *Column) error { _, err := ConcatCompressed(c.Desc(), []*Column{c, c}); return err }},
		{"morph", func(c *Column) error { _, err := Morph(c, ForBP); return err }},
		{"select", func(c *Column) error { _, err := Select(c, CmpLt, 50, Uncompressed, Scalar); return err }},
		{"par select", func(c *Column) error { _, err := ParSelect(c, CmpLt, 50, DeltaBP, Scalar, 4); return err }},
		{"between", func(c *Column) error { _, err := SelectBetween(c, 10, 90, Uncompressed, Scalar); return err }},
		{"project data", func(c *Column) error { _, err := ParProject(c, pos, Uncompressed, Scalar, 4); return err }},
		{"project pos", func(c *Column) error { _, err := ParProject(valid, c, Uncompressed, Scalar, 4); return err }},
		{"sum", func(c *Column) error { _, err := Sum(c, Scalar); return err }},
		{"par sum", func(c *Column) error { _, err := ParSum(c, Scalar, 4); return err }},
		{"calc", func(c *Column) error { _, err := ParCalc(CalcAdd, c, valid, Uncompressed, Scalar, 4); return err }},
		{"semijoin probe", func(c *Column) error { _, err := ParSemiJoin(c, valid, Uncompressed, Scalar, 4); return err }},
		{"semijoin build", func(c *Column) error { _, err := ParSemiJoin(valid, c, Uncompressed, Scalar, 4); return err }},
		{"join probe", func(c *Column) error {
			_, _, err := ParJoinN1(c, valid, Uncompressed, Uncompressed, Scalar, 4)
			return err
		}},
		{"intersect", func(c *Column) error { _, err := ParIntersect(c, pos, Uncompressed, 4); return err }},
		{"union", func(c *Column) error { _, err := ParUnion(c, pos, Uncompressed, 4); return err }},
		{"group", func(c *Column) error {
			_, _, err := ParGroupFirst(c, Uncompressed, Uncompressed, Scalar, 4)
			return err
		}},
		{"sum grouped", func(c *Column) error { _, err := ParSumGrouped(c, valid, 1024, Scalar, 4); return err }},
	}
	for name, corrupt := range corruptVariants(t) {
		for _, op := range ops {
			if op.name == "project data" && corrupt.Desc().Kind != columns.StaticBP {
				// Projection reads its data column by position; formats
				// without random access are rejected before any data is read.
				continue
			}
			t.Run(name+"/"+op.name, func(t *testing.T) {
				err := op.run(corrupt)
				if err == nil {
					t.Fatalf("%s accepted a column with a %s", op.name, name)
				}
				if !errors.Is(err, ErrCorruptData) {
					t.Fatalf("%s error does not match ErrCorruptData: %v", op.name, err)
				}
			})
		}
	}
}

// TestEngineCorruptColumnTyped: corruption reached through a full engine
// execution — scan, parallel operators, scheduler — still matches the
// sentinel, and the engine survives to run clean queries.
func TestEngineCorruptColumnTyped(t *testing.T) {
	vals := make([]uint64, 4*512+300)
	for i := range vals {
		vals[i] = uint64(i % 500)
	}
	db := NewDB()
	db.AddTable("t", map[string][]uint64{"a": vals, "b": vals})
	enc, err := db.Encode(map[string]FormatDesc{"t.a": DynBP, "t.b": StaticBP})
	if err != nil {
		t.Fatal(err)
	}

	b := NewPlanBuilder()
	a := b.Scan("t", "a")
	bb := b.Scan("t", "b")
	sel := b.Select("sel", a, CmpLt, 400)
	proj := b.Project("proj", bb, sel)
	b.Result(b.SumWhole("total", proj))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(enc, WithParallelism(4))
	pr, err := e.Prepare(plan, WithUniformFormat(DynBP))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the base column in place: truncate its main part.
	good := enc.Tables["t"].Cols["a"]
	short := append(append([]uint64{}, good.MainWords()[:len(good.MainWords())-2]...), good.Remainder()...)
	bad, err := columns.New(good.Desc(), good.N(), good.MainElems(), len(good.MainWords())-2, short)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare binds base columns, so the corrupt column must be in place
	// before the plan is prepared.
	enc.Tables["t"].Cols["a"] = bad
	prBad, err := e.Prepare(plan, WithUniformFormat(DynBP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prBad.Execute(context.Background()); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("engine over corrupt base column: %v, want ErrCorruptData", err)
	}

	// The failure is isolated: the engine and the clean prepared plan
	// still produce the reference result.
	enc.Tables["t"].Cols["a"] = good
	got, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatalf("execution after corruption repaired: %v", err)
	}
	if got.Cols["total"].Words()[0] != want.Cols["total"].Words()[0] {
		t.Fatal("result after corruption repaired differs")
	}
}
