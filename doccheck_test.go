package morphstore

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is the doc-lint gate over the public API and
// the engine-internal packages a contributor navigates first (the revive
// `exported` rule, implemented with go/ast so it runs in plain `go test`
// with zero dependencies): every exported top-level identifier of the gated
// packages must carry a doc comment, so that `go doc` on each reads as a
// complete reference. Methods are exempt (the type's doc carries the
// contract). CI runs this test as an explicit step; see
// .github/workflows/ci.yml.
func TestExportedSymbolsDocumented(t *testing.T) {
	// The gated packages: the public root plus the internals the
	// observability and execution layers span.
	dirs := []string{".", "internal/metrics", "internal/ops", "internal/core", "internal/qerr", "internal/delta", "internal/dict", "internal/ingest"}
	var missing []string
	for _, dir := range dirs {
		missing = append(missing, undocumentedIn(t, dir)...)
	}
	if len(missing) > 0 {
		t.Errorf("exported identifiers without doc comments:\n  %s", strings.Join(missing, "\n  "))
	}
}

// undocumentedIn parses one package directory and returns a report line for
// every exported top-level identifier lacking a doc comment.
func undocumentedIn(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Base(dir)
	if dir == "." {
		want = "morphstore"
	}
	pkg, ok := pkgs[want]
	if !ok {
		t.Fatalf("package %s not found in %s", want, dir)
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		missing = append(missing, fset.Position(pos).String()+": "+what+" "+name)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() && d.Doc == nil {
					report(d.Pos(), "func", d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Tok == token.IMPORT {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						// A const/var is documented by its declaration's doc
						// (which for a grouped block is the block comment —
						// the Go convention for enum lists) or per spec (doc
						// or line comment).
						if d.Doc != nil || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								report(name.Pos(), "const/var", name.Name)
							}
						}
					}
				}
			}
		}
	}
	return missing
}
