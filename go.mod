module morphstore

go 1.21
