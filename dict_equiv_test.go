package morphstore_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	ms "morphstore"
)

// stringSelectPlan builds: positions of t.s matching the predicate,
// projected onto t.v.
func stringSelectPlan(t *testing.T, pred func(b *ms.PlanBuilder, s ms.ColRef) ms.ColRef) *ms.Plan {
	t.Helper()
	b := ms.NewPlanBuilder()
	s := b.Scan("t", "s")
	v := b.Scan("t", "v")
	b.Result(b.Project("vals", v, pred(b, s)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// idSelectPlan is the pre-translated reference: the same shape over the
// plain uint64 ID column.
func idSelectPlan(t *testing.T, id uint64, hit bool) *ms.Plan {
	t.Helper()
	b := ms.NewPlanBuilder()
	sid := b.Scan("t", "sid")
	v := b.Scan("t", "v")
	var pos ms.ColRef
	if hit {
		pos = b.Select("pos", sid, ms.CmpEq, id)
	} else {
		// An absent string has no ID; selecting above every ID matches the
		// same empty position set.
		pos = b.Select("pos", sid, ms.CmpGt, id)
	}
	b.Result(b.Project("vals", v, pos))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDictIngestEquivalence is the string-layer equivalence proof: a table
// grown through CSV ingest, JSON-lines ingest, direct AppendStrings batches,
// and remorph folds (which renumber the dictionary into sorted order) must
// answer string-equality queries byte-identically to a read-only reference
// engine holding the same rows as a pre-translated uint64 ID column queried
// with a plain integer select — across four formats and parallelism 1 and 4.
func TestDictIngestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	words := make([]string, 40)
	for i := range words {
		// Letters-first so CSV sniffing keeps the column a string column.
		words[i] = fmt.Sprintf("w%c%02d", 'a'+byte(i%7), i)
	}
	const total = 3000
	strsAll := make([]string, total)
	valsAll := make([]uint64, total)
	// The model dictionary pre-translates in first-occurrence order; the
	// engine's internal numbering diverges after a sorted rebuild, which must
	// not be observable in query results.
	modelID := make(map[string]uint64)
	sidAll := make([]uint64, total)
	for i := range strsAll {
		w := words[rng.Intn(len(words))]
		strsAll[i] = w
		valsAll[i] = uint64(rng.Intn(100000))
		id, ok := modelID[w]
		if !ok {
			id = uint64(len(modelID))
			modelID[w] = id
		}
		sidAll[i] = id
	}

	dbA := ms.NewDB()
	engA := ms.NewEngine(dbA, ms.WithParallelism(4),
		ms.WithRemorph(0.05, time.Millisecond)) // background folds race the ingest
	defer engA.Close(context.Background())
	ctx := context.Background()

	// First chunk arrives through CSV ingest (this also creates the table),
	// the rest through a randomized interleaving of JSON-lines ingest,
	// direct AppendStrings batches, and explicit remorphs.
	p0 := total / 3
	var csvBuf strings.Builder
	csvBuf.WriteString("s,v\n")
	for i := 0; i < p0; i++ {
		fmt.Fprintf(&csvBuf, "%s,%d\n", strsAll[i], valsAll[i])
	}
	if n, err := ms.Ingest(ctx, engA, "t", ms.NewCSVSource(strings.NewReader(csvBuf.String())), ms.WithBatchRows(512)); err != nil || n != p0 {
		t.Fatalf("csv ingest = %d, %v", n, err)
	}
	next := p0
	for next < total {
		k := 1 + rng.Intn(total-next)
		if k > 400 {
			k = 400
		}
		switch rng.Intn(4) {
		case 0: // JSON-lines ingest
			var jb strings.Builder
			for i := next; i < next+k; i++ {
				fmt.Fprintf(&jb, "{\"s\": %q, \"v\": %d}\n", strsAll[i], valsAll[i])
			}
			if n, err := ms.Ingest(ctx, engA, "t", ms.NewJSONLinesSource(strings.NewReader(jb.String())), ms.WithBatchRows(128)); err != nil || n != k {
				t.Fatalf("jsonl ingest = %d, %v", n, err)
			}
		case 1: // direct batch append
			if err := engA.AppendStrings(ctx, "t",
				map[string][]uint64{"v": valsAll[next : next+k]},
				map[string][]string{"s": strsAll[next : next+k]}); err != nil {
				t.Fatalf("append strings: %v", err)
			}
		default: // CSV ingest again
			var cb strings.Builder
			cb.WriteString("s,v\n")
			for i := next; i < next+k; i++ {
				fmt.Fprintf(&cb, "%s,%d\n", strsAll[i], valsAll[i])
			}
			if n, err := ms.Ingest(ctx, engA, "t", ms.NewCSVSource(strings.NewReader(cb.String())), ms.WithBatchRows(256)); err != nil || n != k {
				t.Fatalf("csv ingest = %d, %v", n, err)
			}
		}
		next += k
		if rng.Intn(3) == 0 {
			if err := engA.Remorph(ctx, "t"); err != nil {
				t.Fatalf("remorph: %v", err)
			}
		}
	}
	if n, ok := engA.Snapshot().Rows("t"); !ok || n != total {
		t.Fatalf("grown engine has %d rows, want %d", n, total)
	}

	// The reference engine holds the same rows with the string column
	// pre-translated to model IDs, read-only.
	dbB := ms.NewDB()
	if err := dbB.AddTable("t", map[string][]uint64{"sid": sidAll, "v": valsAll}); err != nil {
		t.Fatal(err)
	}
	engB := ms.NewEngine(dbB, ms.WithParallelism(4))
	defer engB.Close(context.Background())

	descs := map[string]ms.FormatDesc{
		"uncompr": ms.Uncompressed, "dyn_bp": ms.DynBP, "for_bp": ms.ForBP, "rle": ms.RLE,
	}
	targets := []string{words[0], words[13], words[39], "absent"}
	for _, w := range targets {
		w := w
		planA := stringSelectPlan(t, func(b *ms.PlanBuilder, s ms.ColRef) ms.ColRef {
			return b.SelectStrEq("pos", s, w)
		})
		id, hit := modelID[w]
		if !hit {
			id = uint64(len(modelID)) // CmpGt above the top ID: empty
		}
		planB := idSelectPlan(t, id, hit)
		for dn, desc := range descs {
			for _, par := range []int{1, 4} {
				opts := []ms.Option{ms.WithUniformFormat(desc), ms.WithParallelism(par), ms.WithAutoMorph(true)}
				prA, err := engA.Prepare(planA, opts...)
				if err != nil {
					t.Fatalf("%s/%s/par%d prepare strings: %v", w, dn, par, err)
				}
				prB, err := engB.Prepare(planB, opts...)
				if err != nil {
					t.Fatalf("%s/%s/par%d prepare reference: %v", w, dn, par, err)
				}
				resA, err := prA.Execute(ctx)
				if err != nil {
					t.Fatalf("%s/%s/par%d strings: %v", w, dn, par, err)
				}
				resB, err := prB.Execute(ctx)
				if err != nil {
					t.Fatalf("%s/%s/par%d reference: %v", w, dn, par, err)
				}
				if err := sameResultCols(resB, resA); err != nil {
					t.Fatalf("%s/%s/par%d: string engine diverges from pre-translated reference: %v", w, dn, par, err)
				}
			}
		}
	}

	// IN and prefix predicates against a plain-Go model: par 1 and par 4
	// must stay byte-identical, and the values must match the model.
	inSet := []string{words[3], words[17], words[24], "absent"}
	prefix := "wb"
	model := func(match func(string) bool) map[uint64]int {
		counts := make(map[uint64]int)
		for i, s := range strsAll {
			if match(s) {
				counts[valsAll[i]]++
			}
		}
		return counts
	}
	checks := []struct {
		name  string
		plan  *ms.Plan
		match func(string) bool
	}{
		{"in", stringSelectPlan(t, func(b *ms.PlanBuilder, s ms.ColRef) ms.ColRef {
			return b.SelectStrIn("pos", s, inSet...)
		}), func(s string) bool {
			for _, w := range inSet {
				if s == w {
					return true
				}
			}
			return false
		}},
		{"prefix", stringSelectPlan(t, func(b *ms.PlanBuilder, s ms.ColRef) ms.ColRef {
			return b.SelectStrPrefix("pos", s, prefix)
		}), func(s string) bool { return strings.HasPrefix(s, prefix) }},
	}
	for _, c := range checks {
		want := model(c.match)
		var res1 *ms.Result
		for _, par := range []int{1, 4} {
			pr, err := engA.Prepare(c.plan, ms.WithUniformFormat(ms.DynBP), ms.WithParallelism(par), ms.WithAutoMorph(true))
			if err != nil {
				t.Fatalf("%s/par%d: %v", c.name, par, err)
			}
			res, err := pr.Execute(ctx)
			if err != nil {
				t.Fatalf("%s/par%d: %v", c.name, par, err)
			}
			if par == 1 {
				res1 = res
				vals, err := ms.Decompress(res.Cols["vals"])
				if err != nil {
					t.Fatal(err)
				}
				got := make(map[uint64]int)
				for _, v := range vals {
					got[v]++
				}
				if len(got) != len(want) {
					t.Fatalf("%s: %d distinct values, want %d", c.name, len(got), len(want))
				}
				for v, n := range want {
					if got[v] != n {
						t.Fatalf("%s: value %d appears %d times, want %d", c.name, v, got[v], n)
					}
				}
			} else if err := sameResultCols(res1, res); err != nil {
				t.Fatalf("%s: par 4 diverges from par 1: %v", c.name, err)
			}
		}
	}

	// The grown dictionary can translate a result back: every live row's
	// string is resolvable through the pinned snapshot.
	ds := engA.Snapshot().Dict("t", "s")
	if ds == nil {
		t.Fatal("Snapshot.Dict is nil on the grown engine")
	}
	if ds.Len() != len(modelID) {
		t.Fatalf("dict has %d strings, model has %d", ds.Len(), len(modelID))
	}
	for w := range modelID {
		if _, ok := ds.ID(w); !ok {
			t.Fatalf("dict lost %q", w)
		}
	}
}
