// Observability API: per-query stats trees, live tracing, and engine-wide
// counters.
//
// Attach a collector to one execution with WithExecStats and read the
// returned QueryStats tree — one NodeStats per plan operator, carrying
// morsel counts, kernel timings, cardinalities, output formats, and the
// operator's budget lease history:
//
//	var qs morphstore.QueryStats
//	res, err := q.Execute(ctx, morphstore.WithExecStats(&qs))
//	for _, n := range qs.Nodes {
//		fmt.Println(n.Op, n.Name, n.Morsels, n.Kernel)
//	}
//
// Attach a Tracer (WithTracer, at NewEngine, Prepare, or Execute) to stream
// span begin/end and budget re-division events live; NewJSONLTracer writes
// the JSON-lines format cmd/msbench -trace produces. Engine.Stats returns
// the engine-wide counters: queries by outcome class and budget
// utilization. See docs/OBSERVABILITY.md for the full model.
package morphstore

import (
	"io"

	"morphstore/internal/core"
	"morphstore/internal/metrics"
)

// QueryStats is the observed behavior of one Execute call: a tree of
// per-operator NodeStats mirroring the plan DAG, plus wall time and outcome.
// A failed execution yields a coherent partial tree (also attached to the
// *QueryError when the failure was a recovered panic).
type QueryStats = metrics.QueryStats

// NodeStats is the observed behavior of one plan operator within one
// execution: morsel counts, kernel and wall timings, input/output
// cardinalities, output formats, sequential-fallback flag, and budget lease
// history.
type NodeStats = metrics.NodeStats

// EngineStats is a snapshot of an engine's lifetime query counters (by
// outcome class) and current budget utilization, returned by Engine.Stats.
type EngineStats = core.EngineStats

// Tracer receives live span and event callbacks during execution; see
// metrics.Tracer for the implementation contract (must be safe for
// concurrent use, must not call back into the engine).
type Tracer = metrics.Tracer

// Span identifies one operator of one execution in a trace stream.
type Span = metrics.Span

// TraceEvent is a point-in-time occurrence within a span: a budget
// re-division ("lease", value = new worker limit) or a sequential fallback
// ("seq_fallback").
type TraceEvent = metrics.Event

// JSONLTracer is a Tracer writing one JSON object per span/event callback —
// the format cmd/msbench -trace emits and docs/OBSERVABILITY.md documents.
type JSONLTracer = metrics.JSONLTracer

// NewJSONLTracer returns a JSONL tracer writing to w. The caller owns w and
// closes it after the last traced execution finished.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return metrics.NewJSONLTracer(w) }

// WithExecStats attaches a stats collector to one execution: when Execute
// returns, *dst holds the execution's QueryStats tree, on success and
// failure alike. Collection does not change the produced columns — results
// are byte-identical to an uncollected run. Applies to Execute.
func WithExecStats(dst *QueryStats) Option { return core.WithExecStats(dst) }

// WithTracer streams live span begin/end and budget re-division events into
// t: at NewEngine or Prepare for every execution of the engine or plan, at
// Execute for that one call. Applies to NewEngine, Prepare, and Execute.
func WithTracer(t Tracer) Option { return core.WithTracer(t) }
