// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablations of MorphStore-Go's own design choices.
//
// Each figure-level benchmark executes the complete experiment series per
// iteration (all format combinations, or all 13 SSB queries) and reports
// auxiliary metrics (memory footprints) through b.ReportMetric, so a single
// `go test -bench=. -benchmem` regenerates every reported series at bench
// scale. The paper-style printed tables come from `go run ./cmd/msrepro`.
package morphstore

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/datagen"
	"morphstore/internal/formats"
	"morphstore/internal/monetsim"
	"morphstore/internal/morph"
	"morphstore/internal/ops"
	"morphstore/internal/ssb"
	"morphstore/internal/vector"
)

const (
	benchMicroN = 1 << 20 // micro-benchmark column size (paper: 128 Mi)
	benchSF     = 0.01    // SSB scale factor (paper: 10)
)

// BenchmarkTable1Generate regenerates the four synthetic columns of Table 1.
func BenchmarkTable1Generate(b *testing.B) {
	for _, id := range datagen.All {
		b.Run(id.String(), func(b *testing.B) {
			b.SetBytes(int64(benchMicroN * 8))
			for i := 0; i < b.N; i++ {
				vals := datagen.Generate(id, benchMicroN, 42)
				if len(vals) != benchMicroN {
					b.Fatal("bad size")
				}
			}
		})
	}
}

// BenchmarkFigure5Select regenerates Figure 5: one iteration runs the
// select operator over all 25 input/output format combinations.
func BenchmarkFigure5Select(b *testing.B) {
	descs := formats.PaperDescs()
	for _, id := range datagen.All {
		b.Run(id.String(), func(b *testing.B) {
			vals, needle := datagen.GenerateSelectWorkload(id, benchMicroN, 42)
			inputs := make([]*columns.Column, len(descs))
			for i, d := range descs {
				c, err := formats.Compress(vals, d)
				if err != nil {
					b.Fatal(err)
				}
				inputs[i] = c
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range descs {
					for _, outd := range descs {
						if _, err := ops.Select(inputs[j], bitutil.CmpEq, needle, outd, vector.Vec512); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkFigure6SimpleQuery regenerates Figure 6: the simple query under
// its four format configurations, reporting the footprint.
func BenchmarkFigure6SimpleQuery(b *testing.B) {
	cases := []struct {
		name string
		x, y datagen.ColumnID
	}{
		{"case1_C1_C1", datagen.C1, datagen.C1},
		{"case2_C1_C4", datagen.C1, datagen.C4},
		{"case3_C2_C3", datagen.C2, datagen.C3},
	}
	for _, cse := range cases {
		xvals, needle := datagen.GenerateSelectWorkload(cse.x, benchMicroN, 42)
		yvals := datagen.Generate(cse.y, benchMicroN, 43)
		db := core.NewDB()
		db.AddTable("r", map[string][]uint64{"x": xvals, "y": yvals})
		bld := core.NewBuilder()
		x := bld.Scan("r", "x")
		y := bld.Scan("r", "y")
		sel := bld.Select("x_sel", x, bitutil.CmpEq, needle)
		proj := bld.Project("y_proj", y, sel)
		bld.Result(bld.SumWhole("total", proj))
		plan, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}

		static := columns.StaticBPDesc(0)
		configs := []struct {
			name  string
			base  map[string]columns.FormatDesc
			inter map[string]columns.FormatDesc
		}{
			{"uncompressed", nil, nil},
			{"staticbp_base", map[string]columns.FormatDesc{"r.x": static, "r.y": static}, nil},
			{"staticbp_all", map[string]columns.FormatDesc{"r.x": static, "r.y": static},
				map[string]columns.FormatDesc{"x_sel": static, "y_proj": static}},
			{"cascades", map[string]columns.FormatDesc{"r.x": static, "r.y": static},
				map[string]columns.FormatDesc{"x_sel": columns.DeltaBPDesc, "y_proj": columns.ForBPDesc}},
		}
		for _, cfg := range configs {
			b.Run(cse.name+"/"+cfg.name, func(b *testing.B) {
				enc, err := db.Encode(cfg.base)
				if err != nil {
					b.Fatal(err)
				}
				c := core.UncompressedConfig(vector.Vec512)
				if cfg.inter != nil {
					c.Inter = cfg.inter
				}
				var foot int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Execute(plan, enc, c)
					if err != nil {
						b.Fatal(err)
					}
					foot = res.Meas.Footprint()
				}
				b.ReportMetric(float64(foot)/(1<<20), "footprint-MiB")
			})
		}
	}
}

// --- shared SSB setup ----------------------------------------------------

var (
	benchSSBOnce sync.Once
	benchSSBData *ssb.Data
	benchSSBPlan map[ssb.Query]*core.Plan
	benchSSBErr  error
)

func getBenchSSB(b *testing.B) (*ssb.Data, map[ssb.Query]*core.Plan) {
	benchSSBOnce.Do(func() {
		benchSSBData, benchSSBErr = ssb.Generate(benchSF, 42)
		if benchSSBErr != nil {
			return
		}
		benchSSBPlan = make(map[ssb.Query]*core.Plan)
		for _, q := range ssb.Queries {
			p, err := ssb.BuildPlan(q, benchSSBData.Dicts)
			if err != nil {
				benchSSBErr = err
				return
			}
			benchSSBPlan[q] = p
		}
	})
	if benchSSBErr != nil {
		b.Fatal(benchSSBErr)
	}
	return benchSSBData, benchSSBPlan
}

// runAllQueries executes all 13 queries under the config builder and
// returns the total footprint.
func runAllQueries(b *testing.B, db *core.DB, plans map[ssb.Query]*core.Plan,
	cfg func(*core.Plan) *core.Config) int {
	foot := 0
	for _, q := range ssb.Queries {
		res, err := core.Execute(plans[q], db, cfg(plans[q]))
		if err != nil {
			b.Fatalf("%s: %v", q, err)
		}
		foot += res.Meas.Footprint()
	}
	return foot
}

// BenchmarkFigure1And9Systems regenerates Figures 1 and 9: one sub-benchmark
// per system, each iteration running all 13 SSB queries.
func BenchmarkFigure1And9Systems(b *testing.B) {
	data, plans := getBenchSSB(b)

	b.Run("monetdb_scalar", func(b *testing.B) {
		mdb, err := monetsim.NewDB(data.DB, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range ssb.Queries {
				if _, err := monetsim.Execute(plans[q], mdb); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("monetdb_narrow", func(b *testing.B) {
		mdb, err := monetsim.NewDB(data.DB, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range ssb.Queries {
				if _, err := monetsim.Execute(plans[q], mdb); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("morphstore_scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runAllQueries(b, data.DB, plans, func(*core.Plan) *core.Config {
				return core.UncompressedConfig(vector.Scalar)
			})
		}
	})
	b.Run("morphstore_vec512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runAllQueries(b, data.DB, plans, func(*core.Plan) *core.Config {
				return core.UncompressedConfig(vector.Vec512)
			})
		}
	})
	b.Run("morphstore_vec512_compressed", func(b *testing.B) {
		assigns := make(map[ssb.Query]*core.Assignment)
		encs := make(map[ssb.Query]*core.DB)
		for _, q := range ssb.Queries {
			a, err := core.CostBasedAssignment(plans[q], data.DB)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := data.DB.Encode(a.Base)
			if err != nil {
				b.Fatal(err)
			}
			assigns[q], encs[q] = a, enc
		}
		var foot int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			foot = 0
			for _, q := range ssb.Queries {
				res, err := core.Execute(plans[q], encs[q], assigns[q].Config(vector.Vec512, true))
				if err != nil {
					b.Fatal(err)
				}
				foot += res.Meas.Footprint()
			}
		}
		b.ReportMetric(float64(foot)/(1<<20), "footprint-MiB")
	})
}

// benchAssignSeries executes all 13 queries under per-query assignments.
func benchAssignSeries(b *testing.B, data *ssb.Data, plans map[ssb.Query]*core.Plan,
	assign func(q ssb.Query) (*core.Assignment, error)) {
	assigns := make(map[ssb.Query]*core.Assignment)
	encs := make(map[ssb.Query]*core.DB)
	for _, q := range ssb.Queries {
		a, err := assign(q)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := data.DB.Encode(a.Base)
		if err != nil {
			b.Fatal(err)
		}
		assigns[q], encs[q] = a, enc
	}
	var foot int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		foot = 0
		for _, q := range ssb.Queries {
			res, err := core.Execute(plans[q], encs[q], assigns[q].Config(vector.Vec512, false))
			if err != nil {
				b.Fatal(err)
			}
			foot += res.Meas.Footprint()
		}
	}
	b.ReportMetric(float64(foot)/(1<<20), "footprint-MiB")
}

// staticAssignFor assigns static BP to every column of the plan.
func staticAssignFor(p *core.Plan) *core.Assignment {
	a := core.NewAssignment()
	for _, name := range p.BaseColumns() {
		a.Base[name] = columns.StaticBPDesc(0)
	}
	for _, name := range p.IntermediateNames() {
		a.Inter[name] = columns.StaticBPDesc(0)
	}
	return a
}

// BenchmarkFigure7Combinations regenerates Figure 7: the worst,
// uncompressed, static BP, and best format combinations over all queries.
func BenchmarkFigure7Combinations(b *testing.B) {
	data, plans := getBenchSSB(b)
	bests := make(map[ssb.Query]*core.Assignment)
	worsts := make(map[ssb.Query]*core.Assignment)
	for _, q := range ssb.Queries {
		best, worst, err := core.FootprintSearch(plans[q], data.DB)
		if err != nil {
			b.Fatal(err)
		}
		bests[q], worsts[q] = best, worst
	}
	b.Run("worst", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return worsts[q], nil })
	})
	b.Run("uncompressed", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return core.NewAssignment(), nil })
	})
	b.Run("staticbp", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return staticAssignFor(plans[q]), nil })
	})
	b.Run("best", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return bests[q], nil })
	})
}

// BenchmarkFigure8BaseVsIntermediates regenerates Figure 8: uncompressed vs
// compressed base columns only vs compressed base and intermediates.
func BenchmarkFigure8BaseVsIntermediates(b *testing.B) {
	data, plans := getBenchSSB(b)
	full := make(map[ssb.Query]*core.Assignment)
	for _, q := range ssb.Queries {
		a, err := core.CostBasedAssignment(plans[q], data.DB)
		if err != nil {
			b.Fatal(err)
		}
		full[q] = a
	}
	b.Run("uncompressed", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return core.NewAssignment(), nil })
	})
	b.Run("base_only", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) {
			a := core.NewAssignment()
			for k, v := range full[q].Base {
				a.Base[k] = v
			}
			return a, nil
		})
	})
	b.Run("base_and_intermediates", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return full[q], nil })
	})
}

// BenchmarkFigure10CostModel regenerates Figure 10: footprint of static BP
// vs the cost-based selection vs the exhaustive best combination.
func BenchmarkFigure10CostModel(b *testing.B) {
	data, plans := getBenchSSB(b)
	b.Run("staticbp", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) { return staticAssignFor(plans[q]), nil })
	})
	b.Run("costbased", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) {
			return core.CostBasedAssignment(plans[q], data.DB)
		})
	})
	b.Run("best", func(b *testing.B) {
		benchAssignSeries(b, data, plans, func(q ssb.Query) (*core.Assignment, error) {
			best, _, err := core.FootprintSearch(plans[q], data.DB)
			return best, err
		})
	})
}

// parLevels are the parallelism degrees the morsel/scheduler benchmarks
// sweep; on a >=4-core host par4 vs par1 is the headline speedup.
var benchParLevels = []int{1, 2, 4, 8}

// BenchmarkParallelSelectDynBP measures the morsel-parallel select driver
// over a DynBP-compressed column at increasing parallelism degrees. The
// par1 case is the sequential baseline (it dispatches to the plain
// operator); outputs are byte-identical at every level.
func BenchmarkParallelSelectDynBP(b *testing.B) {
	vals, needle := datagen.GenerateSelectWorkload(datagen.C1, benchMicroN, 42)
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				if _, err := ops.ParSelect(col, bitutil.CmpEq, needle, columns.DeltaBPDesc, vector.Vec512, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSum measures the morsel-parallel whole-column sum over a
// DynBP column.
func BenchmarkParallelSum(b *testing.B) {
	vals := datagen.Generate(datagen.C1, benchMicroN, 42)
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				if _, _, err := ops.ParSum(col, vector.Vec512, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelJoinN1 measures the morsel-parallel N:1 join probe over a
// DynBP probe column against a shared read-only hash table (~50% match rate).
func BenchmarkParallelJoinN1(b *testing.B) {
	vals := datagen.Generate(datagen.C1, benchMicroN, 42)
	probeVals := make([]uint64, len(vals))
	const nBuild = 4096
	for i, v := range vals {
		probeVals[i] = v % (2 * nBuild)
	}
	probe, err := formats.Compress(probeVals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	buildVals := make([]uint64, nBuild)
	for i := range buildVals {
		buildVals[i] = uint64(i)
	}
	build := columns.FromValues(buildVals)
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				if _, _, err := ops.ParJoinN1(probe, build, columns.DeltaBPDesc, columns.DynBPDesc, vector.Vec512, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCalc measures the morsel-parallel element-wise multiply
// over two DynBP columns streamed in lockstep.
func BenchmarkParallelCalc(b *testing.B) {
	a, err := formats.Compress(datagen.Generate(datagen.C1, benchMicroN, 42), columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	c, err := formats.Compress(datagen.Generate(datagen.C1, benchMicroN, 43), columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.SetBytes(int64(benchMicroN * 8))
			for i := 0; i < b.N; i++ {
				if _, err := ops.ParCalcBinary(ops.CalcMul, a, c, columns.DynBPDesc, vector.Vec512, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSumGrouped measures the morsel-parallel grouped sum with
// per-worker partial group-sum arrays (1024 groups).
func BenchmarkParallelSumGrouped(b *testing.B) {
	const nGroups = 1024
	gidVals := make([]uint64, benchMicroN)
	for i := range gidVals {
		gidVals[i] = uint64(i) % nGroups
	}
	gids, err := formats.Compress(gidVals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	vals, err := formats.Compress(datagen.Generate(datagen.C1, benchMicroN, 42), columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.SetBytes(int64(benchMicroN * 8))
			for i := 0; i < b.N; i++ {
				if _, err := ops.ParSumGrouped(gids, vals, nGroups, vector.Vec512, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// dynBPBaseAssign compresses every base column of the plan with DynBP,
// except randomly accessed ones, which must keep random access (static BP).
func dynBPBaseAssign(p *core.Plan) map[string]columns.FormatDesc {
	base := make(map[string]columns.FormatDesc)
	for _, name := range p.BaseColumns() {
		if p.RandomAccessed(name) {
			base[name] = columns.StaticBPDesc(0)
		} else {
			base[name] = columns.DynBPDesc
		}
	}
	return base
}

// BenchmarkParallelSSBQ11 runs the select-heavy SSB Q1.1 over
// DynBP-compressed base columns at increasing Config.Parallelism. This is
// the headline morsel-parallelism measurement: on a >=4-core host, par4
// should run >= 2x faster than par1 while producing byte-identical results
// (TestExecuteParallelismEquivalence proves the identity).
func BenchmarkParallelSSBQ11(b *testing.B) {
	data, plans := getBenchSSB(b)
	plan := plans[ssb.Q11]
	enc, err := data.DB.Encode(dynBPBaseAssign(plan))
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			cfg := core.UncompressedConfig(vector.Vec512)
			cfg.Parallelism = par
			for i := 0; i < b.N; i++ {
				if _, err := core.Execute(plan, enc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSSBQ41 runs SSB Q4.1, whose plan has several independent
// dimension-table select branches: this exercises the concurrent DAG
// scheduler on top of the morsel-parallel kernels.
func BenchmarkParallelSSBQ41(b *testing.B) {
	data, plans := getBenchSSB(b)
	plan := plans[ssb.Q41]
	enc, err := data.DB.Encode(dynBPBaseAssign(plan))
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range benchParLevels {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			cfg := core.UncompressedConfig(vector.Vec512)
			cfg.Parallelism = par
			for i := 0; i < b.N; i++ {
				if _, err := core.Execute(plan, enc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineMultiQuery runs SSB Q1.1, prepared once on an engine with
// a GOMAXPROCS worker budget, from conc concurrent query streams: the
// shared-budget multi-query scheduling measurement. Every stream's results
// stay byte-identical to a sequential run (TestEngineConcurrentExecutes
// proves the identity).
func BenchmarkEngineMultiQuery(b *testing.B) {
	data, plans := getBenchSSB(b)
	plan := plans[ssb.Q11]
	enc, err := data.DB.Encode(dynBPBaseAssign(plan))
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(enc, core.WithStyle(vector.Vec512))
	pq, err := eng.Prepare(plan)
	if err != nil {
		b.Fatal(err)
	}
	for _, conc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errCh := make(chan error, conc)
				for s := 0; s < conc; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := pq.Execute(context.Background()); err != nil {
							errCh <- err
						}
					}()
				}
				wg.Wait()
				close(errCh)
				if err := <-errCh; err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodecs measures compression and decompression throughput of every
// format on the Table 1 columns (the §2.1 speed-vs-rate trade-off).
func BenchmarkCodecs(b *testing.B) {
	for _, id := range []datagen.ColumnID{datagen.C1, datagen.C4} {
		vals := datagen.Generate(id, benchMicroN, 42)
		for _, desc := range formats.AllDescs() {
			b.Run(fmt.Sprintf("%v/%v/compress", id, desc), func(b *testing.B) {
				b.SetBytes(int64(len(vals) * 8))
				for i := 0; i < b.N; i++ {
					if _, err := formats.Compress(vals, desc); err != nil {
						b.Fatal(err)
					}
				}
			})
			col, err := formats.Compress(vals, desc)
			if err != nil {
				b.Fatal(err)
			}
			codec, err := formats.Get(desc.Kind)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]uint64, len(vals))
			b.Run(fmt.Sprintf("%v/%v/decompress", id, desc), func(b *testing.B) {
				b.SetBytes(int64(len(vals) * 8))
				for i := 0; i < b.N; i++ {
					if err := codec.Decompress(dst, col); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationBufferSize sweeps the cache-resident buffer size of the
// de/re-compression wrapper (the paper fixes 2048 elements = 16 KiB = half
// L1; this ablation justifies that choice).
func BenchmarkAblationBufferSize(b *testing.B) {
	vals := datagen.Generate(datagen.C1, benchMicroN, 42)
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{512, 1024, 2048, 8192, 65536, 1 << 20} {
		b.Run(fmt.Sprintf("buf%d", size), func(b *testing.B) {
			buf := make([]uint64, size)
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				r, err := formats.NewReader(col)
				if err != nil {
					b.Fatal(err)
				}
				w, err := formats.NewWriter(columns.ForBPDesc, len(vals))
				if err != nil {
					b.Fatal(err)
				}
				for {
					k, err := r.Read(buf)
					if err != nil {
						b.Fatal(err)
					}
					if k == 0 {
						break
					}
					if err := w.Write(buf[:k]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMorph compares direct morphing against the generic
// block-streaming path and against a full decompress-recompress detour.
func BenchmarkAblationMorph(b *testing.B) {
	vals := datagen.Generate(datagen.C1, benchMicroN, 42)
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := morph.Morph(col, columns.StaticBPDesc(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic_blockwise", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := morph.Generic(col, columns.StaticBPDesc(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full_materialize", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			dec, err := formats.Decompress(col)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := formats.Compress(dec, columns.StaticBPDesc(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSpecialized compares the specialized direct operators
// against the on-the-fly de/re-compression operators on the same columns.
func BenchmarkAblationSpecialized(b *testing.B) {
	vals := make([]uint64, benchMicroN)
	for i := range vals {
		vals[i] = uint64(i % 256)
	}
	sbp, err := formats.Compress(vals, columns.StaticBPDesc(8))
	if err != nil {
		b.Fatal(err)
	}
	dbp, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("select_swar_direct", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := ops.SelectStaticBPDirect(sbp, bitutil.CmpLt, 10, columns.DeltaBPDesc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("select_otf", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := ops.Select(sbp, bitutil.CmpLt, 10, columns.DeltaBPDesc, vector.Vec512); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sum_dynbp_direct", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := ops.SumDynBPDirect(dbp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sum_otf", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, _, err := ops.SumWhole(dbp, vector.Vec512); err != nil {
				b.Fatal(err)
			}
		}
	})
}
