package morphstore

import (
	"fmt"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: compress,
// analyze, morph, select, project, sum.
func TestFacadeQuickstart(t *testing.T) {
	vals := make([]uint64, 10000)
	var want uint64
	for i := range vals {
		vals[i] = uint64(i % 97)
		if vals[i] < 10 {
			want += vals[i]
		}
	}
	col, err := Compress(vals, DynBP)
	if err != nil {
		t.Fatal(err)
	}
	if col.N() != len(vals) {
		t.Fatal("bad length")
	}
	prof := Analyze(vals)
	if prof.MaxBits != 7 {
		t.Fatalf("maxbits = %d", prof.MaxBits)
	}
	rec, err := SuggestFormat(prof, Formats())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsCompressed() {
		t.Fatal("small values should compress")
	}
	static, err := Morph(col, StaticBP)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := Select(static, CmpLt, 10, DeltaBP, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	vcol, err := Project(static, pos, DynBP, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sum(vcol, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	dec, err := Decompress(col)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatal("round trip")
		}
	}
}

// TestFacadePlanAPI exercises plan building and execution via the facade.
func TestFacadePlanAPI(t *testing.T) {
	db := NewDB()
	db.AddTable("t", map[string][]uint64{
		"a": {1, 2, 3, 4, 5, 6},
		"b": {10, 20, 30, 40, 50, 60},
	})
	bld := NewPlanBuilder()
	a := bld.Scan("t", "a")
	bv := bld.Scan("t", "b")
	sel := bld.Select("sel", a, CmpGe, 4)
	proj := bld.Project("proj", bv, sel)
	bld.Result(bld.SumWhole("total", proj))
	plan, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*Config{
		UncompressedConfig(Scalar),
		UniformConfig(plan, DynBP, Vec512),
	} {
		res, err := Execute(plan, db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum, _ := res.Cols["total"].Values()
		if sum[0] != 150 {
			t.Fatalf("sum = %d, want 150", sum[0])
		}
	}
	best, worst, err := FootprintSearch(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || worst == nil {
		t.Fatal("searches returned nil")
	}
	if _, err := CostBasedAssignment(plan, db); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeSSB exercises the SSB facade at a tiny scale.
func TestFacadeSSB(t *testing.T) {
	data, err := GenerateSSB(0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := SSBQueries[0]
	plan, err := BuildSSBPlan(q, data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, data.DB, UncompressedConfig(Vec512))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractSSBResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SSBReference(q, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Sum != want[0].Sum {
		t.Fatalf("facade SSB result mismatch: %v vs %v", got, want)
	}
}

// TestFacadeSSBParallel runs all 13 SSB queries under the concurrent
// scheduler + morsel-parallel kernels and checks the canonical result rows
// against the row-wise ground truth.
func TestFacadeSSBParallel(t *testing.T) {
	data, err := GenerateSSB(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range SSBQueries {
		plan, err := BuildSSBPlan(q, data)
		if err != nil {
			t.Fatal(err)
		}
		cfg := UncompressedConfig(Vec512)
		cfg.Parallelism = 8
		res, err := Execute(plan, data.DB, cfg)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := ExtractSSBResult(q, res)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := SSBReference(q, data)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", q, len(got), len(want))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("%s row %d: %v, want %v", q, i, got[i], want[i])
			}
		}
	}
}

// TestFacadeParallelOps checks the morsel-parallel facade wrappers against
// their sequential counterparts.
func TestFacadeParallelOps(t *testing.T) {
	// Large enough to clear the 2*MinMorsel split threshold, so the
	// morsel-parallel drivers genuinely run rather than falling back.
	vals := make([]uint64, 9000)
	for i := range vals {
		vals[i] = uint64(i % 777)
	}
	col, err := Compress(vals, DynBP)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Select(col, CmpLt, 100, DeltaBP, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParSelect(col, CmpLt, 100, DeltaBP, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("ParSelect: %v, want %v", got, want)
	}
	if _, err := ParSelectBetween(col, 10, 20, Uncompressed, Scalar, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ParSemiJoin(col, FromValues([]uint64{5, 6}), Uncompressed, Scalar, 4); err != nil {
		t.Fatal(err)
	}
	data := FromValues(vals)
	if _, err := ParProject(data, want, Uncompressed, Scalar, 4); err != nil {
		t.Fatal(err)
	}
	ws, err := Sum(col, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := ParSum(col, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ws != gs {
		t.Fatalf("ParSum = %d, want %d", gs, ws)
	}

	build := FromValues([]uint64{3, 50, 200, 600})
	wp, wb, err := JoinN1(col, build, Uncompressed, Uncompressed, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gp, gb, err := ParJoinN1(col, build, Uncompressed, Uncompressed, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wp.String() != gp.String() || wb.String() != gb.String() {
		t.Fatal("ParJoinN1 outputs diverge from JoinN1")
	}
	wc, err := Calc(CalcAdd, col, col, DynBP, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := ParCalc(CalcAdd, col, col, DynBP, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wc.String() != gc.String() {
		t.Fatalf("ParCalc: %v, want %v", gc, wc)
	}
	gids := make([]uint64, len(vals))
	for i := range gids {
		gids[i] = uint64(i % 5)
	}
	wg, err := SumGrouped(FromValues(gids), col, 5, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gg, err := ParSumGrouped(FromValues(gids), col, 5, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wg.String() != gg.String() {
		t.Fatalf("ParSumGrouped: %v, want %v", gg, wg)
	}
	wgf, wge, err := GroupFirst(FromValues(gids), DynBP, Uncompressed, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	ggf, gge, err := ParGroupFirst(FromValues(gids), DynBP, Uncompressed, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wgf.String() != ggf.String() || wge.String() != gge.String() {
		t.Fatal("ParGroupFirst outputs diverge from GroupFirst")
	}
	wgn, _, err := GroupNext(wgf, col, DynBP, Uncompressed, Vec512)
	if err != nil {
		t.Fatal(err)
	}
	ggn, _, err := ParGroupNext(ggf, col, DynBP, Uncompressed, Vec512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wgn.String() != ggn.String() {
		t.Fatal("ParGroupNext diverges from GroupNext")
	}
	posA := make([]uint64, 0, len(vals))
	posB := make([]uint64, 0, len(vals))
	for i := range vals {
		if i%2 == 0 {
			posA = append(posA, uint64(i))
		}
		if i%3 == 0 {
			posB = append(posB, uint64(i))
		}
	}
	wi, err := Intersect(FromValues(posA), FromValues(posB), DeltaBP)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := ParIntersect(FromValues(posA), FromValues(posB), DeltaBP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wi.String() != gi.String() {
		t.Fatal("ParIntersect diverges from Intersect")
	}
	wu, err := Union(FromValues(posA), FromValues(posB), DeltaBP)
	if err != nil {
		t.Fatal(err)
	}
	gu, err := ParUnion(FromValues(posA), FromValues(posB), DeltaBP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wu.String() != gu.String() {
		t.Fatal("ParUnion diverges from Union")
	}
}

// TestFacadeFormats sanity-checks the format constructors.
func TestFacadeFormats(t *testing.T) {
	if len(Formats()) != 5 {
		t.Errorf("Formats() = %d entries, want the paper's 5", len(Formats()))
	}
	if len(AllFormats()) != 6 {
		t.Errorf("AllFormats() = %d entries, want 6", len(AllFormats()))
	}
	if StaticBPWidth(13).Bits != 13 {
		t.Error("StaticBPWidth")
	}
	c := FromValues([]uint64{1, 2})
	if c.N() != 2 {
		t.Error("FromValues")
	}
	if _, err := Calc(CalcMul, c, c, Uncompressed, Scalar); err != nil {
		t.Error(err)
	}
	if _, err := Intersect(c, c, Uncompressed); err != nil {
		t.Error(err)
	}
	if _, err := Union(c, c, Uncompressed); err != nil {
		t.Error(err)
	}
	if _, err := SelectBetween(c, 1, 2, Uncompressed, Scalar); err != nil {
		t.Error(err)
	}
	p := Analyze([]uint64{5, 5, 5})
	if n, err := EstimateBytes(p, RLE); err != nil || n <= 0 {
		t.Error("EstimateBytes")
	}
}

func TestFacadeConcatCompressed(t *testing.T) {
	vals := make([]uint64, 3000)
	for i := range vals {
		vals[i] = uint64(2 * i)
	}
	for _, desc := range AllFormats() {
		whole, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Compress(vals[:1024], desc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compress(vals[1024:], desc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ConcatCompressed(desc, []*Column{a, b})
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		gw, ww := got.Words(), whole.Words()
		if got.Desc() != whole.Desc() || got.N() != whole.N() || len(gw) != len(ww) {
			t.Fatalf("%v: concat shape differs: %v vs %v", desc, got, whole)
		}
		for i := range ww {
			if gw[i] != ww[i] {
				t.Fatalf("%v: word %d differs", desc, i)
			}
		}
	}
}
